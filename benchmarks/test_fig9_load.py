"""E13 — Fig 9: FCT and goodput vs network load, four systems.

Paper (at 128 racks / 3,072 servers): Sirius closely matches ESN (Ideal)
on both 99th-percentile short-flow FCT and average goodput, while
ESN-OSUB (Ideal) saturates early (goodput up to 6.7× lower, FCT up to
86 % higher).  SIRIUS (IDEAL) lower-bounds Sirius' FCT at low load
(the request/grant round-trip) with the gap closing as load rises.

Reduced scale here (see EXPERIMENTS.md): the orderings and crossovers
are the reproduction target, not absolute values.
"""

from _harness import (
    N_FLOWS,
    N_NODES,
    emit,
    emit_table,
    parallel_points,
    run_esn,
    run_sirius,
    us,
)

from repro.analysis.plotting import ascii_chart

LOADS = (0.10, 0.25, 0.50, 0.75, 1.00)

#: Per-load system variants, in row order.
_SYSTEMS = (
    ("esn", run_esn, {}),
    ("osub", run_esn, {"oversubscription": 3.0}),
    ("sirius", run_sirius, {"multiplier": 1.5}),
    ("ideal", run_sirius, {"multiplier": 1.5, "ideal": True}),
)


def _sweep():
    # All 20 points are independent seeded runs; fan them over worker
    # processes (results return in submission order).
    entries = [
        (fn, {"load": load, **kwargs})
        for load in LOADS
        for _name, fn, kwargs in _SYSTEMS
    ]
    results = parallel_points(entries)
    rows = []
    for i, load in enumerate(LOADS):
        row = {"load": load}
        for j, (name, _fn, _kwargs) in enumerate(_SYSTEMS):
            row[name] = results[i * len(_SYSTEMS) + j]
        rows.append(row)
    return rows


def test_fig9_load_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(f"\n[scale: {N_NODES} racks, {N_FLOWS} flows per point]")
    emit_table(
        "Fig 9a — 99th-percentile FCT of short flows (<100 KB), us",
        ["load", "ESN (Ideal)", "ESN-OSUB (Ideal)", "Sirius",
         "Sirius (Ideal)"],
        [
            (r["load"],
             us(r["esn"].fct_percentile(99)),
             us(r["osub"].fct_percentile(99)),
             us(r["sirius"].fct_percentile(99)),
             us(r["ideal"].fct_percentile(99)))
            for r in rows
        ],
    )
    emit_table(
        "Fig 9b — normalized average server goodput",
        ["load", "ESN (Ideal)", "ESN-OSUB (Ideal)", "Sirius",
         "Sirius (Ideal)"],
        [
            (r["load"],
             r["esn"].normalized_goodput,
             r["osub"].normalized_goodput,
             r["sirius"].normalized_goodput,
             r["ideal"].normalized_goodput)
            for r in rows
        ],
    )

    emit()
    emit(ascii_chart(
        {
            "ESN": [(r["load"], r["esn"].normalized_goodput) for r in rows],
            "OSUB": [(r["load"], r["osub"].normalized_goodput)
                     for r in rows],
            "Sirius": [(r["load"], r["sirius"].normalized_goodput)
                       for r in rows],
        },
        title="Fig 9b shape — goodput vs load",
        width=48, height=12,
    ))

    for r in rows:
        load = r["load"]
        # At low load everyone delivers the offered load.
        if load <= 0.25:
            for system in ("esn", "osub", "sirius", "ideal"):
                assert r[system].normalized_goodput > 0.8 * load, (
                    system, load
                )
        # ESN (Ideal) upper-bounds its oversubscribed variant.
        assert (r["esn"].normalized_goodput
                >= r["osub"].normalized_goodput - 1e-9), load
        # FCT ordering: oversubscription degrades the ESN's tail.
        assert (r["osub"].fct_percentile(99)
                >= r["esn"].fct_percentile(99) * 0.95), load
        # Sirius tracks ESN (Ideal) goodput within a modest factor at
        # every load (the paper's headline "closely matches"; exact
        # closeness is scale-dependent — see EXPERIMENTS.md).
        assert (r["sirius"].normalized_goodput
                > 0.6 * r["esn"].normalized_goodput), load
    low = rows[0]
    # SIRIUS (IDEAL) lower-bounds Sirius at low load (request/grant
    # round-trip latency, §7).
    assert (low["ideal"].fct_percentile(99)
            < low["sirius"].fct_percentile(99))
    # OSUB saturates early: goodput flat from L=0.5 to 1.0 while
    # ESN (Ideal) keeps growing.
    osub_gain = (rows[-1]["osub"].normalized_goodput
                 - rows[2]["osub"].normalized_goodput)
    esn_gain = (rows[-1]["esn"].normalized_goodput
                - rows[2]["esn"].normalized_goodput)
    assert osub_gain < esn_gain
    # Sirius keeps delivering everything it is offered.
    for r in rows:
        assert r["sirius"].completion_fraction == 1.0
