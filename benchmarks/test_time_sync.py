"""E10 — §6: time-synchronization accuracy.

Paper: the clock-phase difference between two FPGAs stayed within
±5 ps over 24 hours — far below the 40 ps symbol time at 25 GBaud.
"""

from _harness import emit_table

from repro import SyncProtocol
from repro.sync.protocol import make_clock_ensemble
from repro.units import PICOSECOND


def test_sync_accuracy_two_nodes(benchmark):
    def run():
        proto = SyncProtocol(make_clock_ensemble(2, seed=9))
        return proto.run(30_000, warmup_epochs=5_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "§6 — clock-phase deviation, 2 nodes (leader-rotation sync)",
        ["quantity", "measured", "paper"],
        [
            ("max |offset| (ps)", result.max_abs_offset_ps, "±5"),
            ("epochs simulated", result.epochs, "24 h wall-clock"),
            ("symbol time (ps)", 40, 40),
        ],
    )
    assert result.max_abs_offset_s < 5 * PICOSECOND


def test_sync_accuracy_at_scale_with_failure(benchmark):
    def run():
        proto = SyncProtocol(make_clock_ensemble(16, seed=2))
        proto.run(6_000, warmup_epochs=3_000)
        proto.fail_node(0)  # the round-robin leader fails mid-flight
        return proto.run(6_000, warmup_epochs=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "§4.4 — 16-node sync across a leader failure",
        ["quantity", "measured", "paper requirement"],
        [("max |offset| (ps)", result.max_abs_offset_ps, "< 100")],
    )
    assert result.max_abs_offset_s < 100 * PICOSECOND


def test_delay_estimation_alignment(benchmark):
    import random

    from repro.sync import DelayEstimator, epoch_start_offsets, \
        verify_slot_alignment

    lengths = [random.Random(3).uniform(10, 500) for _ in range(16)]

    def run():
        estimator = DelayEstimator(timestamp_noise_s=2e-12,
                                   rng=random.Random(4))
        offsets = epoch_start_offsets(lengths, estimator, n_probes=128)
        return verify_slot_alignment(lengths, offsets,
                                     tolerance_s=10 * PICOSECOND)

    spread = benchmark(run)
    emit_table(
        "§A.2 — slot alignment at the AWGR after delay estimation",
        ["quantity", "measured", "budget"],
        [("arrival spread (ps)", spread / PICOSECOND, "< 10")],
    )
    assert spread < 10 * PICOSECOND
