"""E1 — Fig 1: datacenter traffic vs electrical switch capacity.

Paper: network capacity/traffic doubles yearly and reaches ~100 Pbps by
2020, while switch capacity doubles every two years (25.6 Tb/s in 2020)
and is expected to slow beyond 2024 — a widening gap.
"""

from _harness import emit_table

from repro.analysis import CapacityTrend


def test_fig1_capacity_trends(benchmark):
    trend = CapacityTrend()
    rows = benchmark(trend.series)
    emit_table(
        "Fig 1 — capacity trends (Pbps, log scale in the paper)",
        ["year", "traffic (Pbps)", "switch (Pbps)", "gap (x)"],
        [
            (r["year"], r["traffic_pbps"], r["switch_pbps"], r["gap"])
            for r in rows
            if r["year"] % 5 == 0
        ],
    )
    by_year = {r["year"]: r for r in rows}
    # Paper anchors: ~100 Pbps demand and 25.6 Tb/s switches in 2020.
    assert by_year[2020]["traffic_pbps"] == 100.0
    assert by_year[2020]["switch_pbps"] * 1000 == 25.6
    # The gap widens monotonically.
    gaps = [r["gap"] for r in rows]
    assert gaps == sorted(gaps)
    # Post-2024 slowdown: switch growth rate drops.
    growth_23_24 = (trend.switch_capacity_bps(2024)
                    / trend.switch_capacity_bps(2023))
    growth_24_25 = (trend.switch_capacity_bps(2025)
                    / trend.switch_capacity_bps(2024))
    assert growth_24_25 < growth_23_24
