"""E6 — Fig 8a: CDF of SOA rise/fall times on the custom chip.

Paper: the 19-SOA InP chip switches with worst-case 527 ps rise and
912 ps fall — sub-nanosecond across every gate.
"""

from _harness import emit_table

from repro import SOABank


def test_fig8a_soa_transition_cdf(benchmark):
    bank = SOABank(19, seed=0)
    rises, falls, levels = benchmark(bank.transition_cdf)
    rows = []
    for pct in (0.25, 0.5, 0.75, 1.0):
        idx = min(len(levels) - 1, round(pct * len(levels)) - 1)
        rows.append((f"{int(pct * 100)}%", rises[idx] / 1e-12,
                     falls[idx] / 1e-12))
    emit_table(
        "Fig 8a — SOA switching time CDF (ps)",
        ["CDF level", "rise (ps)", "fall (ps)"],
        rows,
    )
    emit_table(
        "Fig 8a — worst cases",
        ["quantity", "measured (ps)", "paper (ps)"],
        [
            ("worst rise", max(rises) / 1e-12, 527),
            ("worst fall", max(falls) / 1e-12, 912),
        ],
    )
    assert max(rises) / 1e-12 == 527.0
    assert max(falls) / 1e-12 == 912.0
    assert all(r < 1e-9 for r in rises)
    assert all(f < 1e-9 for f in falls)
