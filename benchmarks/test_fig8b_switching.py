"""E7 — Fig 8b: switching between adjacent vs distant wavelengths.

Paper: with the disaggregated (fixed-laser-bank) design the tuning
latency is < 900 ps whether the two wavelengths are adjacent
(1552.524 → 1552.926 nm) or span the C-band (1550.116 → 1559.389 nm) —
span independence is the whole point of disaggregation.
"""

from _harness import emit_table

from repro import FixedLaserBank
from repro.units import wavelength_nm


def test_fig8b_span_independence(benchmark):
    bank = FixedLaserBank(19, seed=0)

    def measure():
        return {
            "adjacent": bank.tuning_latency(9, 10),
            "distant": bank.tuning_latency(0, 18),
        }

    latencies = benchmark(measure)
    emit_table(
        "Fig 8b — switching latency vs wavelength span",
        ["transition", "span (channels)", "wavelengths (nm)",
         "latency (ps)", "paper"],
        [
            ("adjacent", 1,
             f"{wavelength_nm(9, 19):.2f} -> {wavelength_nm(10, 19):.2f}",
             latencies["adjacent"] / 1e-12, "< 900 ps"),
            ("distant", 18,
             f"{wavelength_nm(0, 19):.2f} -> {wavelength_nm(18, 19):.2f}",
             latencies["distant"] / 1e-12, "< 900 ps"),
        ],
    )
    assert latencies["adjacent"] < 0.92e-9
    assert latencies["distant"] < 0.92e-9

    trace = bank.switching_trace(0, 18)
    # The old channel decays while the new one rises within the trace.
    assert trace["old_intensity"][-1] < 0.2
    assert trace["new_intensity"][-1] > 0.8
