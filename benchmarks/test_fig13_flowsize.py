"""E17 — Fig 13: sensitivity to the average flow size.

Paper: with 512 B mean flows (median 46 B!) the fixed 562 B cell is
oversized — 2.3× worse FCT and 1.7× lower goodput than ESN (Ideal).
The gap shrinks as flows grow: at 16 KiB mean it is 1.2× (FCT) and
1.05× (goodput), and at 100 KB Sirius matches ESN.
"""

from _harness import emit_table, run_esn, run_sirius, us

from repro.units import BYTE, KIB, KILOBYTE

FLOW_SIZES = (
    ("512B", 512 * BYTE),
    ("1KiB", 1 * KIB),
    ("4KiB", 4 * KIB),
    ("16KiB", 16 * KIB),
    ("64KiB", 64 * KIB),
    ("100KB", 100 * KILOBYTE),
)
LOAD = 0.5


def _sweep():
    rows = []
    for label, mean in FLOW_SIZES:
        sirius = run_sirius(LOAD, multiplier=1.5, mean_flow_bits=mean)
        esn = run_esn(LOAD, mean_flow_bits=mean)
        rows.append({"label": label, "mean": mean, "sirius": sirius,
                     "esn": esn})
    return rows


def test_fig13_flow_size_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit_table(
        "Fig 13 — FCT (99p short, us) and goodput vs mean flow size",
        ["mean flow size", "ESN p99", "Sirius p99", "FCT ratio",
         "ESN goodput", "Sirius goodput", "goodput ratio"],
        [
            (r["label"],
             us(r["esn"].fct_percentile(99)),
             us(r["sirius"].fct_percentile(99)),
             (r["sirius"].fct_percentile(99)
              / max(r["esn"].fct_percentile(99), 1e-12)),
             r["esn"].normalized_goodput,
             r["sirius"].normalized_goodput,
             r["sirius"].normalized_goodput
             / max(r["esn"].normalized_goodput, 1e-12))
            for r in rows
        ],
    )
    ratios = {
        r["label"]: r["sirius"].normalized_goodput
        / max(r["esn"].normalized_goodput, 1e-12)
        for r in rows
    }
    # Tiny flows suffer from cell padding: goodput ratio is the worst
    # at 512 B and improves monotonically toward the big-flow regime.
    assert ratios["512B"] < ratios["16KiB"] <= ratios["100KB"] * 1.05
    # At 100 KB Sirius approximately matches ESN goodput.
    assert ratios["100KB"] > 0.8
    # Cell-padding overhead: delivered payload per wire bit is lowest
    # for 512 B flows (most of each 562 B cell is padding).
    small = rows[0]["sirius"]
    large = rows[-1]["sirius"]
    assert small.normalized_goodput < large.normalized_goodput
