"""Ablation — request/grant selection discipline and hotspot traffic.

Design choices called out in DESIGN.md:

* DRRM-style round-robin vs uniform-random selection in the
  congestion-control protocol (§4.3 cites DRRM [13]);
* the DRRM claim of 100 % throughput for hot-spot traffic;
* single-hop (intermediate == destination) routing allowed vs forced
  two-hop VLB.
"""

from _harness import (
    GRATING_PORTS,
    N_NODES,
    emit_table,
    make_workload,
)

from repro import CongestionConfig, SiriusNetwork
from repro.workload.traffic_matrix import TrafficPattern, patterned_flows


def _run(selection, exclude_destination=False, load=0.75, seed=1):
    net = SiriusNetwork(
        N_NODES, GRATING_PORTS, uplink_multiplier=1.5, seed=seed,
        config=CongestionConfig(
            selection=selection,
            exclude_destination_intermediate=exclude_destination,
        ),
    )
    return net.run(make_workload(load).generate(800))


def test_selection_discipline(benchmark):
    def sweep():
        return {
            "drrm": _run("drrm"),
            "random": _run("random"),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "Ablation — DRRM vs random selection (L=75%)",
        ["discipline", "goodput", "p99 short FCT (us)"],
        [
            (name, r.normalized_goodput,
             (r.fct_percentile(99) or 0) / 1e-6)
            for name, r in results.items()
        ],
    )
    # Both disciplines deliver the full offered workload.
    for r in results.values():
        assert r.completion_fraction == 1.0


def test_forced_two_hop_routing(benchmark):
    def sweep():
        return {
            "with_direct": _run("drrm", exclude_destination=False),
            "two_hop_only": _run("drrm", exclude_destination=True),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "Ablation — destination allowed as intermediate (single hop)",
        ["mode", "goodput", "p99 short FCT (us)"],
        [
            (name, r.normalized_goodput,
             (r.fct_percentile(99) or 0) / 1e-6)
            for name, r in results.items()
        ],
    )
    for r in results.values():
        assert r.completion_fraction == 1.0


def test_hotspot_throughput(benchmark):
    """§4.3: DRRM-style protocols sustain hot-spot (incast) traffic."""

    def run():
        n = N_NODES
        net = SiriusNetwork(n, GRATING_PORTS, uplink_multiplier=1.0,
                            seed=4)
        flows = patterned_flows(
            TrafficPattern("incast", n, hotspot_node=0),
            sizes_bits=[1_200_000] * (n - 1), arrival_rate=1e9,
        )
        flows.sort(key=lambda f: f.arrival_time)
        result = net.run(flows)
        received_rate = result.delivered_bits / result.duration_s
        capacity = net.reference_node_bandwidth_bps * (n - 1) / n
        return result, received_rate / capacity

    result, utilization = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "Ablation — hot-spot (full incast on one node)",
        ["quantity", "measured", "paper claim"],
        [
            ("flows completed", len(result.completed_flows), N_NODES - 1),
            ("hotspot receive utilization", utilization,
             "100% throughput (DRRM)"),
            ("peak fwd queue (cells)", result.peak_fwd_cells, "<= Q x N"),
        ],
    )
    assert len(result.completed_flows) == N_NODES - 1
    assert utilization > 0.6
    assert result.peak_fwd_cells <= 4 * N_NODES
