"""E16 — Fig 12: goodput vs load for 1×/1.5×/2× uplinks.

Paper: load-balanced routing costs up to 2× throughput in the worst
case, but the bursty, stochastic workload makes the worst case rare:
at low load no extra uplinks are needed; at L=100 % Sirius(1×) reaches
79 % of ESN (Ideal) goodput and 1.5× suffices to approach it.
"""

from _harness import emit_table, run_esn, run_sirius

LOADS = (0.10, 0.50, 1.00)
MULTIPLIERS = (1.0, 1.5, 2.0)


def _sweep():
    rows = []
    for load in LOADS:
        esn = run_esn(load)
        sirius = {
            mult: run_sirius(load, multiplier=mult) for mult in MULTIPLIERS
        }
        rows.append({"load": load, "esn": esn, "sirius": sirius})
    return rows


def test_fig12_uplink_bandwidth(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit_table(
        "Fig 12 — normalized goodput vs uplink provisioning",
        ["load", "ESN (Ideal)", "Sirius (1x)", "Sirius (1.5x)",
         "Sirius (2x)"],
        [
            (r["load"], r["esn"].normalized_goodput,
             r["sirius"][1.0].normalized_goodput,
             r["sirius"][1.5].normalized_goodput,
             r["sirius"][2.0].normalized_goodput)
            for r in rows
        ],
    )
    low = rows[0]
    # At low load even 1x matches ESN: no extra transceivers needed.
    assert (low["sirius"][1.0].normalized_goodput
            > 0.9 * low["esn"].normalized_goodput)
    # At full load extra uplinks recover goodput monotonically.
    full = rows[-1]
    g = {m: full["sirius"][m].normalized_goodput for m in MULTIPLIERS}
    assert g[1.0] < g[1.5] <= g[2.0] * 1.02
    # Sirius(1x) loses a large chunk vs ESN at L=1 (paper: reaches only
    # 79% of ESN); Sirius(2x) recovers most of it.
    esn_full = full["esn"].normalized_goodput
    assert g[1.0] < 0.95 * esn_full
    assert g[2.0] > g[1.0] * 1.2
