"""Validation — the epoch abstraction against slot-level physics.

The §7 benchmarks run on the epoch-synchronous simulator (DESIGN.md
§3).  This benchmark replays the same workload on the slot-granularity
simulator, whose transmissions follow the cyclic schedule's actual
per-slot (uplink, wavelength, destination) assignments, and checks the
two agree on delivery and timing.
"""

from _harness import emit_table, make_workload, us

from repro import SiriusNetwork
from repro.core.cell import Flow
from repro.sim.slotsim import SlotLevelSirius

N = 16
G = 4
LOAD = 0.5
N_FLOWS = 400


def _run_both():
    flows = make_workload(LOAD, seed=5, n_nodes=N).generate(N_FLOWS)
    # make_workload builds for the bench-scale node count; re-map onto N.
    for flow in flows:
        flow.src %= N
        flow.dst %= N
        if flow.src == flow.dst:
            flow.dst = (flow.dst + 1) % N
    clones = [Flow(f.flow_id, f.src, f.dst, f.size_bits, f.arrival_time)
              for f in flows]
    epoch_sim = SiriusNetwork(N, G, uplink_multiplier=1.0, seed=1)
    slot_sim = SlotLevelSirius(N, G, uplink_multiplier=1.0, seed=1)
    return epoch_sim.run(flows), slot_sim.run(clones)


def test_slot_vs_epoch_equivalence(benchmark):
    epoch_result, slot_result = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )
    emit_table(
        "Validation — epoch-synchronous vs slot-level simulation",
        ["metric", "epoch sim", "slot sim"],
        [
            ("delivered bits", epoch_result.delivered_bits,
             slot_result.delivered_bits),
            ("completed flows", len(epoch_result.completed_flows),
             len(slot_result.completed_flows)),
            ("duration (us)", epoch_result.duration_s / 1e-6,
             slot_result.duration_s / 1e-6),
            ("p99 short FCT (us)", us(epoch_result.fct_percentile(99)),
             us(slot_result.fct_percentile(99))),
            ("peak fwd cells", epoch_result.peak_fwd_cells,
             slot_result.peak_fwd_cells),
        ],
    )
    assert slot_result.delivered_bits == epoch_result.delivered_bits
    assert (len(slot_result.completed_flows)
            == len(epoch_result.completed_flows))
    # Timing agreement: the slot sim resolves sub-epoch detail (and can
    # forward within an epoch), so it is at most one epoch slower and
    # typically slightly faster.
    assert slot_result.duration_s <= epoch_result.duration_s * 1.1
    ratio = (slot_result.fct_percentile(99)
             / epoch_result.fct_percentile(99))
    assert 0.4 <= ratio <= 1.3
