"""E12 — Fig 6b: Sirius cost relative to electrical networks.

Paper: with gratings at 25 % of switch cost and tunable lasers at 3×
fixed, Sirius costs 28 % of a non-blocking ESN, 53 % of a 3:1
oversubscribed ESN (while staying non-blocking), and 55 % of an
electrically-switched Sirius variant.
"""

from _harness import emit_table

from repro.analysis import NetworkCostModel


def test_fig6b_cost_ratio(benchmark):
    model = NetworkCostModel()
    rows = benchmark(model.fig6b_series)
    emit_table(
        "Fig 6b — Sirius/ESN cost vs grating cost fraction",
        ["grating/switch cost", "vs non-blocking", "vs 3:1 oversub",
         "vs non-blocking (5x laser)"],
        [
            (f"{int(r['grating_cost_fraction'] * 100)}%",
             r["vs_nonblocking"], r["vs_oversubscribed"],
             r["vs_nonblocking_5x_laser"])
            for r in rows
        ],
    )
    anchors = model.headline_ratios()
    emit_table(
        "§5 — cost anchors (grating 25%, laser 3x)",
        ["comparison", "measured", "paper"],
        [
            ("vs non-blocking ESN", anchors["vs_nonblocking"], 0.28),
            ("vs 3:1 oversubscribed ESN", anchors["vs_oversubscribed"], 0.53),
            ("vs electrical Sirius variant",
             anchors["vs_electrical_variant"], 0.55),
        ],
    )
    assert abs(anchors["vs_nonblocking"] - 0.28) < 0.03
    assert abs(anchors["vs_oversubscribed"] - 0.53) < 0.04
    assert abs(anchors["vs_electrical_variant"] - 0.55) < 0.04
    ratios = [r["vs_nonblocking"] for r in rows]
    assert ratios == sorted(ratios)
