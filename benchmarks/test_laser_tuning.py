"""E5 — §3.2: dampened tuning of the off-the-shelf DSDBR laser.

Paper: a custom drive PCB with overshoot/undershoot current steps
achieves a median tuning latency of 14 ns and a worst case of 92 ns
across all 12,432 ordered pairs of the 112-wavelength laser (vs ~10 ms
for the stock driver).
"""

import statistics

from _harness import emit_table

from repro import TunableLaser
from repro.optics.laser import NaiveTuningDriver


def test_dampened_tuning_statistics(benchmark):
    laser = TunableLaser()
    latencies = benchmark(laser.all_pair_latencies)
    median_ns = statistics.median(latencies) / 1e-9
    worst_ns = max(latencies) / 1e-9
    stock = NaiveTuningDriver().tuning_latency(111)
    emit_table(
        "§3.2 — DSDBR tuning latency across all wavelength pairs",
        ["quantity", "measured", "paper"],
        [
            ("ordered pairs", len(latencies), 12432),
            ("median (ns)", median_ns, 14),
            ("worst case (ns)", worst_ns, 92),
            ("stock driver (ms)", stock / 1e-3, 10),
        ],
    )
    assert len(latencies) == 12_432
    assert abs(median_ns - 14.0) < 0.5
    assert abs(worst_ns - 92.0) < 0.5
    assert stock == 10e-3
