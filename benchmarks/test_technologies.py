"""Ablation — the §8 optical switching technology landscape.

Paper: optical switches "vary in terms of switching time by almost six
orders of magnitude"; micro/millisecond technologies need a separate
packet network for short flows, and only nanosecond reconfiguration
passes the §2.2 small-packet overhead test.
"""

from _harness import emit_table

from repro.analysis.technologies import (
    fastest_passive_core,
    reconfiguration_spread_orders,
    survey,
)


def test_switching_technology_survey(benchmark):
    rows = benchmark(survey)
    emit_table(
        "§8 — optical switching technologies vs the §2.2 target",
        ["technology", "reconfig", "packet-switchable", "overhead @576B"],
        [
            (
                r["name"],
                _format_time(r["reconfiguration_s"]),
                "yes" if r["packet_switching"] else "no",
                f"{r['overhead']:.3g}",
            )
            for r in rows
        ],
    )
    assert reconfiguration_spread_orders() >= 6.0
    assert "Sirius v2" in fastest_passive_core().name
    feasible = [r for r in rows if r["packet_switching"]]
    assert any("Sirius v2" in r["name"] for r in feasible)
    # No milli/microsecond technology passes.
    for r in rows:
        if r["reconfiguration_s"] >= 1e-6:
            assert not r["packet_switching"], r["name"]


def _format_time(seconds: float) -> str:
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.0f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.0f} us"
    if seconds >= 1e-9:
        return f"{seconds * 1e9:.0f} ns"
    return f"{seconds * 1e12:.0f} ps"
