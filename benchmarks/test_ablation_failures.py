"""Ablation — fault tolerance (§4.5): detection, degradation, adjustment.

Paper: the cyclic schedule detects failures within microseconds; a
failed node costs survivors a proportional 1/N of bandwidth (no
blackholing once announced); a consistent schedule update regains the
loss entirely.
"""

from _harness import GRATING_PORTS, N_NODES, emit_table, make_workload

from repro import FailureDetector, FailurePlan, SiriusNetwork
from repro.core.failures import AdjustedSchedule, surviving_bandwidth_fraction


def test_failure_detection_and_impact(benchmark):
    def run():
        net = SiriusNetwork(N_NODES, GRATING_PORTS,
                            uplink_multiplier=1.0, seed=1)
        flows = make_workload(0.4, seed=3).generate(800)
        plan = FailurePlan.single_failure(node=5, at_epoch=100)
        result = net.run(flows, failure_plan=plan, check_invariants=True)
        return net, flows, result

    net, flows, result = benchmark.pedantic(run, rounds=1, iterations=1)
    unaffected = [f for f in flows if f.src != 5 and f.dst != 5]
    completed_unaffected = sum(1 for f in unaffected if f.is_complete)

    detector = FailureDetector(N_NODES, node=0, threshold=3)
    detection = detector.detection_latency_s(net.schedule.epoch_duration_s)
    emit_table(
        "§4.5 — single rack failure mid-run",
        ["quantity", "measured", "paper"],
        [
            ("detection latency (us)", detection / 1e-6, "microseconds"),
            ("unaffected flows completed",
             f"{completed_unaffected}/{len(unaffected)}", "all"),
            ("flows terminated (touching the dead node)",
             result.failed_flows, "proportional impact"),
            ("stranded transit cells retransmitted",
             result.retransmitted_cells, "no blackholing"),
            ("survivor bandwidth (no adjustment)",
             surviving_bandwidth_fraction(N_NODES, 1), "1 - 1/N"),
            ("survivor bandwidth (adjusted schedule)",
             AdjustedSchedule(N_NODES, {5}).bandwidth_fraction(), 1.0),
        ],
    )
    assert completed_unaffected == len(unaffected)
    assert detection < 10e-6
    AdjustedSchedule(N_NODES, {5}).verify_round_robin()


def test_degradation_is_proportional(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (f, surviving_bandwidth_fraction(N_NODES, f))
            for f in (0, 1, 2, 4, 8)
        ],
        rounds=1, iterations=1,
    )
    emit_table(
        "§4.5 — bandwidth vs failed nodes (before schedule adjustment)",
        ["failed nodes", "survivor bandwidth fraction"],
        rows,
    )
    fractions = [fraction for _f, fraction in rows]
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[1] == (N_NODES - 2) / (N_NODES - 1)
