"""Ablation — burst-mode PAM-4 equalization with tap caching (§6).

Paper: "to cope with the multi-level signal encoding, we also developed
a custom digital signal processing algorithm to guarantee fast
equalization.  Both techniques leverage the cyclic schedule to 'cache'
the relevant parameters instead of having to learn them from scratch."
"""

from _harness import emit_table

from repro.phy.equalizer import LMSEqualizer, TapCache
from repro.phy.pam4 import (
    PAM4Channel,
    bits_to_symbols,
    measure_ber,
    random_bits,
    symbols_to_bits,
    theoretical_awgn_ber,
)

ISI = (1.0, 0.45, 0.2)


def test_equalization_and_tap_caching(benchmark):
    def run():
        channel = PAM4Channel(snr_db=26.0, impulse_response=ISI, seed=4)
        bits = random_bits(20_000, seed=1)
        symbols = bits_to_symbols(bits)
        received = channel.transmit(symbols)
        raw_ber = measure_ber(bits, symbols_to_bits(received))
        eq = LMSEqualizer(n_taps=9)
        eq.train(received, symbols)
        eq_ber = measure_ber(bits, symbols_to_bits(eq.equalize(received)))

        cache = TapCache(n_taps=9)
        for visit in range(8):
            bits_v = random_bits(6_000, seed=10 + visit)
            symbols_v = bits_to_symbols(bits_v)
            cache.train_burst(0, channel.transmit(symbols_v), symbols_v)
        return raw_ber, eq_ber, cache.stats

    raw_ber, eq_ber, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "§6 — PAM-4 equalization over a dispersive 50 Gb/s burst link",
        ["quantity", "measured", "paper context"],
        [
            ("unequalized BER", raw_ber, "link unusable"),
            ("equalized BER", eq_ber, "post-FEC error-free"),
            ("cold training (symbols)", stats.mean_cold_symbols,
             "from-scratch learning"),
            ("cached training (symbols)", stats.mean_warm_symbols,
             "cached parameters"),
            ("caching speedup", stats.speedup, "> 1 (the §6 trick)"),
        ],
    )
    assert raw_ber > 0.05
    assert eq_ber < 1e-3
    assert stats.speedup > 1.5


def test_awgn_calibration(benchmark):
    def run():
        rows = []
        for snr in (14.0, 16.0, 18.0):
            bits = random_bits(300_000, seed=3)
            channel = PAM4Channel(snr_db=snr, seed=4)
            received = channel.transmit(bits_to_symbols(bits))
            measured = measure_ber(bits, symbols_to_bits(received))
            rows.append((snr, measured, theoretical_awgn_ber(snr)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "PAM-4 channel calibration — measured vs closed-form AWGN BER",
        ["SNR (dB)", "measured BER", "theory"],
        rows,
    )
    for _snr, measured, theory in rows:
        assert abs(measured - theory) / theory < 0.3
