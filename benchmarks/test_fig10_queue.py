"""E14 — Fig 10: effect of the queue threshold Q.

Paper: Q=2 loses goodput under bursts; larger Q raises FCT, queue
occupancy and reordering.  Q=4 is the sweet spot; worst-case aggregate
queue occupancy at a ToR stays tens of KB (78.2 KB at their scale) and
the per-flow reorder buffer peaks at 163 KB.
"""

from _harness import emit_table, run_sirius, us

QS = (2, 4, 8, 16)
LOADS = (0.10, 0.50, 1.00)


def _sweep():
    rows = []
    for q in QS:
        for load in LOADS:
            result = run_sirius(load, multiplier=1.5, q=q,
                                track_reorder=True)
            rows.append({"q": q, "load": load, "result": result})
    return rows


def test_fig10_queue_threshold(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit_table(
        "Fig 10a — 99th-percentile short-flow FCT (us)",
        ["load"] + [f"Q={q}" for q in QS],
        [
            [load] + [us(r["result"].fct_percentile(99))
                      for r in rows if r["load"] == load]
            for load in LOADS
        ],
    )
    emit_table(
        "Fig 10b — normalized goodput",
        ["load"] + [f"Q={q}" for q in QS],
        [
            [load] + [r["result"].normalized_goodput
                      for r in rows if r["load"] == load]
            for load in LOADS
        ],
    )
    emit_table(
        "Fig 10c — peak aggregate forward-queue occupancy (KB)",
        ["load"] + [f"Q={q}" for q in QS],
        [
            [load] + [r["result"].peak_fwd_bytes / 1000
                      for r in rows if r["load"] == load]
            for load in LOADS
        ],
    )
    emit_table(
        "Fig 10d — peak per-flow reorder buffer (KB)",
        ["load"] + [f"Q={q}" for q in QS],
        [
            [load] + [r["result"].peak_reorder_bytes / 1000
                      for r in rows if r["load"] == load]
            for load in LOADS
        ],
    )

    at_full = {r["q"]: r["result"] for r in rows if r["load"] == 1.0}
    # Larger Q admits (weakly) more queuing.
    assert (at_full[16].peak_fwd_cells >= at_full[2].peak_fwd_cells)
    # The Q bound holds: per-destination queues never exceed Q, so the
    # aggregate is bounded by Q x destinations.
    for q, result in at_full.items():
        n = result.n_nodes
        assert result.peak_fwd_cells <= q * n
    # Q=2 underperforms Q=4 on goodput under bursty traffic (paper's
    # reason for picking 4); allow equality at this reduced scale.
    assert (at_full[4].normalized_goodput
            >= at_full[2].normalized_goodput - 0.01)
    # Queue occupancy stays tens-of-KB scale, as in the paper.
    assert at_full[4].peak_fwd_bytes < 150_000
