"""E3 — Fig 2b: CMOS scaling slowdown.

Paper: below 7 nm, perf/area and perf/power gains fall far short of the
historic doubling per generation; perf/power (analog/SERDES-bound)
scales worst.
"""

from _harness import emit_table

from repro.analysis import CmosScaling


def test_fig2b_cmos_scaling(benchmark):
    scaling = CmosScaling()
    rows = benchmark(scaling.series)
    emit_table(
        "Fig 2b — normalized performance vs transistor node",
        ["node (nm)", "year", "perf/area", "perf/power", "ideal"],
        [
            (r["node"], r["year"], r["perf_per_area"], r["perf_per_power"],
             r["ideal"])
            for r in rows
        ],
    )
    # The paper's qualitative claims.
    assert scaling.scaling_has_slowed()
    assert scaling.shortfall("perf_per_power") < scaling.shortfall(
        "perf_per_area"
    )
    last = rows[-1]
    assert last["perf_per_power"] < last["ideal"] / 2
