"""E15 — Fig 11: 99th-percentile FCT vs guardband at full load.

Paper: the guardband is swept from 1 ns to 40 ns while kept at 10 % of
the slot; FCT worsens as the guardband (and hence slot and epoch)
grows — the case for sub-10 ns reconfiguration.  The protocol/ideal gap
also widens with the guardband.
"""

from _harness import emit_table, run_sirius, us

GUARDBANDS_NS = (1, 5, 10, 20, 40)


def _sweep():
    # header_bytes=0: the paper's simulator treats the cell as pure
    # payload, which matters for the 1 ns point where the slot (and
    # cell) shrink to 10 ns / ~60 B.
    rows = []
    for guard in GUARDBANDS_NS:
        sirius = run_sirius(1.0, multiplier=1.5, guardband_ns=guard,
                            header_bytes=0)
        ideal = run_sirius(1.0, multiplier=1.5, guardband_ns=guard,
                           header_bytes=0, ideal=True)
        rows.append({"guard": guard, "sirius": sirius, "ideal": ideal})
    return rows


def test_fig11_guardband_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit_table(
        "Fig 11 — 99th-percentile short-flow FCT at L=100% (us)",
        ["guardband (ns)", "slot (ns)", "Sirius", "Sirius (Ideal)"],
        [
            (r["guard"], r["guard"] * 10,
             us(r["sirius"].fct_percentile(99)),
             us(r["ideal"].fct_percentile(99)))
            for r in rows
        ],
    )
    fcts = [r["sirius"].fct_percentile(99) for r in rows]
    # FCT grows with the guardband (epoch duration grows with the
    # slot); the magnitude of the growth is scale-dependent — at this
    # reduced scale the injection-bound component of the overloaded
    # FCT is epoch-count-invariant, so the rise is gentler than the
    # paper's (see EXPERIMENTS.md).
    assert fcts[-1] > fcts[2] >= fcts[0] * 0.95
    assert fcts[-1] > fcts[0]
    # The protocol pays a positive premium over SIRIUS (IDEAL) at every
    # guardband.  (The paper additionally reports the absolute gap
    # *widening* with G; at this reduced scale the overloaded FCT is
    # injection-bound and epoch-count-invariant, so the widening does
    # not reproduce — recorded in EXPERIMENTS.md.)
    for r in rows:
        assert (r["sirius"].fct_percentile(99)
                > r["ideal"].fct_percentile(99))
