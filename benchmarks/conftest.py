"""Benchmark-suite plumbing.

Exposes pytest's capture manager to the harness so result tables can be
written through to the real stdout (and any ``tee``) instead of being
swallowed by per-test capture.
"""

import pytest

import _harness


@pytest.fixture(autouse=True)
def _expose_capture_manager(request):
    _harness.CAPTURE_MANAGER = request.config.pluginmanager.getplugin(
        "capturemanager"
    )
    yield
    _harness.CAPTURE_MANAGER = None
