"""E4 — Fig 3a / Fig 5: AWGR routing, the 4-node topology and its
static schedule.

Paper: a 4-node, 2-uplink Sirius with four 2-port gratings; the network
schedule (Fig 5b) connects every node pair once per 2-slot epoch with no
receive contention.
"""

from _harness import emit_table

from repro import AWGR, CyclicSchedule, SiriusTopology


def _build():
    topo = SiriusTopology(4, 2)
    schedule = CyclicSchedule(topo)
    schedule.verify_contention_free()
    schedule.verify_full_coverage()
    return topo, schedule


def test_fig3a_awgr_matrix(benchmark):
    awgr = AWGR(4)
    matrix = benchmark(awgr.routing_matrix)
    emit_table(
        "Fig 3a — 4-port AWGR wavelength routing (output port)",
        ["input port"] + [f"wavelength {w}" for w in range(4)],
        [[i] + matrix[i] for i in range(4)],
    )
    for channel in range(4):
        outputs = [matrix[i][channel] for i in range(4)]
        assert sorted(outputs) == [0, 1, 2, 3]


def test_fig5b_schedule_table(benchmark):
    topo, schedule = benchmark(_build)
    wavelength_names = {0: "A", 1: "B"}
    rows = []
    for entry in schedule.table():
        rows.append((
            f"({entry['node'] + 1}, {entry['uplink'] + 1})",
            wavelength_names[entry["slot0"]["wavelength"]],
            f"({entry['slot0']['dst'] + 1})",
            wavelength_names[entry["slot1"]["wavelength"]],
            f"({entry['slot1']['dst'] + 1})",
        ))
    emit_table(
        "Fig 5b — network schedule (paper's 1-based labels)",
        ["(node, port)", "slot1 wl", "slot1 dst", "slot2 wl", "slot2 dst"],
        rows,
    )
    # Every (node, port) appears; each node reaches all 4 nodes per epoch.
    assert len(rows) == 8
    for node in range(4):
        reached = set()
        for entry in schedule.table():
            if entry["node"] == node:
                reached.add(entry["slot0"]["dst"])
                reached.add(entry["slot1"]["dst"])
        assert reached == {0, 1, 2, 3}


def test_paper_scaling_examples(benchmark):
    # 4,096 racks through 16-port gratings with 256 uplinks (§4.1).
    # One round: the full-scale topology allocates ~1M uplink records.
    dc = benchmark.pedantic(lambda: SiriusTopology(4096, 16),
                            rounds=1, iterations=1)
    emit_table(
        "§4.1 — rack-based deployment arithmetic",
        ["quantity", "measured", "paper"],
        [
            ("uplinks per rack", dc.uplinks_per_node, 256),
            ("grating ports", dc.grating_ports, 16),
            ("racks", dc.n_nodes, 4096),
        ],
    )
    assert dc.uplinks_per_node == 256
