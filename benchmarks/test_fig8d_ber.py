"""E9 — Fig 8d: BER vs received power for four switching wavelengths.

Paper: all four channels reach post-FEC error-free operation at −8 dBm
of received power with standard FEC.
"""

from _harness import emit_table

from repro import BERModel


def test_fig8d_ber_curves(benchmark):
    model = BERModel()

    def curves():
        return {ch: model.ber_curve(ch) for ch in range(4)}

    data = benchmark(curves)
    powers = data[0]["received_dbm"]
    sample_idx = [i for i, p in enumerate(powers)
                  if abs(p % 2) < 1e-9 or abs(p % 2 - 2) < 1e-9]
    rows = []
    for i in sample_idx:
        rows.append([powers[i]] + [
            data[ch]["log10_ber"][i] for ch in range(4)
        ])
    emit_table(
        "Fig 8d — log10(BER) vs received power (dBm)",
        ["power (dBm)", "ch1", "ch2", "ch3", "ch4"],
        rows,
    )
    sens = [model.sensitivity_for_channel(ch) for ch in range(4)]
    emit_table(
        "Fig 8d — FEC-threshold crossings",
        ["channel", "sensitivity (dBm)", "paper"],
        [(ch + 1, sens[ch], "about -8") for ch in range(4)],
    )
    for ch in range(4):
        # Crossing within a few tenths of a dB of -8 dBm.
        assert abs(sens[ch] + 8.0) < 0.5
        # Error-free above the crossing.
        assert model.error_free(sens[ch] + 0.1, ch)
        assert not model.error_free(sens[ch] - 1.0, ch)
