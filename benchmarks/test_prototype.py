"""E19 — §6: the four-node prototype, generations v1 and v2.

Paper: Sirius v1 (dampened DSDBR, 100 ns guardband) and Sirius v2
(custom chip, 912 ps tuning, 3.84 ns guardband) both run post-FEC
error-free on the cyclic schedule; clock sync stays within ±5 ps.
"""

from _harness import emit_table

from repro import PrototypeRig


def _run(generation):
    rig = PrototypeRig(generation, seed=5)
    return rig.run(n_epochs=15, sync_epochs=4000)


def test_prototype_v1(benchmark):
    report = benchmark.pedantic(lambda: _run("v1"), rounds=1, iterations=1)
    emit_table(
        "§6 — Sirius v1 (off-the-shelf laser + dampened driver)",
        ["quantity", "measured", "paper"],
        [
            ("guardband (ns)", report.guardband_s / 1e-9, 100),
            ("worst reconfiguration (ns)",
             report.worst_reconfiguration_s / 1e-9, "< 100"),
            ("post-FEC error-free", report.error_free, True),
            ("bits checked", report.bits_checked, "24 h at 25 Gb/s"),
        ],
    )
    assert report.guardband_sufficient
    assert report.error_free


def test_prototype_v2(benchmark):
    report = benchmark.pedantic(lambda: _run("v2"), rounds=1, iterations=1)
    emit_table(
        "§6 — Sirius v2 (custom fixed-laser-bank chip)",
        ["quantity", "measured", "paper"],
        [
            ("guardband (ns)", report.guardband_s / 1e-9, 3.84),
            ("worst laser tuning (ps)", report.worst_tuning_s / 1e-12,
             "< 912"),
            ("worst reconfiguration (ns)",
             report.worst_reconfiguration_s / 1e-9, "< 3.84"),
            ("post-FEC error-free", report.error_free, True),
            ("sync deviation (ps)", report.sync_max_offset_s / 1e-12,
             "±5"),
        ],
    )
    assert report.guardband_sufficient
    assert report.error_free
    assert report.worst_tuning_s <= 912e-12 + 1e-15
    assert report.sync_max_offset_s < 5e-12
