"""E2 — Fig 2a: the scale tax of hierarchical electrical networks.

Paper: 50 W/Tbps for a direct transceiver+fibre link, rising with each
added switch layer to ~487 W/Tbps for a >65K-node datacenter; at
100 Pbps of bisection that is a prohibitive 48.7 MW (§1, §2).
"""

from _harness import emit_table

from repro.analysis import NetworkPowerModel

PAPER_ANCHORS = {2: 50.0, 65536: 487.0}


def test_fig2a_scale_tax(benchmark):
    model = NetworkPowerModel()
    rows = benchmark(model.scale_tax_series)
    emit_table(
        "Fig 2a — network power per bisection bandwidth",
        ["nodes", "switch layers", "measured W/Tbps", "paper W/Tbps"],
        [
            (r["n_nodes"], r["layers"], r["watts_per_tbps"],
             PAPER_ANCHORS.get(r["n_nodes"], "-"))
            for r in rows
        ],
    )
    by_nodes = {r["n_nodes"]: r["watts_per_tbps"] for r in rows}
    assert by_nodes[2] == 50.0
    assert abs(by_nodes[65536] - 487.0) / 487.0 < 0.10
    values = [r["watts_per_tbps"] for r in rows]
    assert values == sorted(values)

    power_mw = model.datacenter_power_mw(100.0)
    emit_table(
        "§1 headline — 100 Pbps non-blocking network power",
        ["quantity", "measured", "paper"],
        [("power (MW)", power_mw, 48.7)],
    )
    assert abs(power_mw - 48.7) / 48.7 < 0.10
