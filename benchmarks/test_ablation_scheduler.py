"""Ablation — on-demand scheduling vs the scheduler-less design (§4.2).

Paper: explicit demand-collection scheduling "is not efficient and
practical for Sirius' fast switching at scale"; the static cyclic
schedule plus load-balanced routing removes the control plane entirely
at a bounded (<= 2x) throughput cost.
"""

from _harness import emit_table

from repro.core.demand_scheduler import (
    ControlPlaneModel,
    cyclic_slots_for_demand,
    decompose_demand,
    vlb_slots_for_demand,
)


def _skewed_demand(n, hot=20.0, base=1.0):
    demand = [[0.0 if i == j else base for j in range(n)] for i in range(n)]
    demand[0][1] = hot
    return demand


def test_scheduling_latency_at_scale(benchmark):
    model = ControlPlaneModel()
    rows = benchmark.pedantic(
        lambda: [
            (n, model.round_latency_s(n) / 1e-6,
             model.staleness_slots(n, 100e-9))
            for n in (64, 512, 4096)
        ],
        rounds=1, iterations=1,
    )
    emit_table(
        "§4.2 — on-demand scheduling control-plane cost (100 ns slots)",
        ["nodes", "round latency (us)", "staleness (slots)"],
        rows,
    )
    # At datacenter scale, any on-demand schedule is hundreds-to-
    # thousands of slots stale; the static schedule is never stale.
    assert rows[-1][2] > 100
    assert rows[0][1] > 4  # even 64 nodes cost > 4 us per round


def test_slot_efficiency_tradeoff(benchmark):
    n = 16
    demand = _skewed_demand(n)

    def run():
        aware = len(decompose_demand(demand))
        direct = cyclic_slots_for_demand(demand)
        vlb = vlb_slots_for_demand(demand)
        return aware, direct, vlb

    aware, direct, vlb = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "§4.2 — slots to serve a skewed demand (one hot pair + mice)",
        ["scheduler", "slots", "control plane"],
        [
            ("demand-aware (greedy BvN)", aware, "per-round latency above"),
            ("static cyclic, direct routing", direct, "none"),
            ("static cyclic + VLB (Sirius)", vlb, "none"),
        ],
    )
    # Demand-aware wins raw slots on skew; VLB recovers most of the
    # static schedule's loss without any control plane (the <= 2x
    # worst-case bound of Chang et al. [12]).
    assert aware < vlb
    assert vlb < direct
    assert vlb <= 2 * aware * 2  # within the 2x VLB bound of ideal-ish
