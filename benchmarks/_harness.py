"""Shared harness for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper and
prints a paper-vs-measured comparison.  The simulations run at reduced
scale (pure-Python simulator vs the authors' native one); the scale is
controlled here and recorded in EXPERIMENTS.md.

Output is written through :func:`emit` (bypassing pytest's capture) so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
the series.

Sweep-shaped benchmarks (several independent loads per figure) fan
their points over worker processes via :func:`parallel_points`, which
wraps :class:`repro.perf.ParallelSweepRunner` — results come back in
submission order, and ``REPRO_SWEEP_WORKERS=1`` forces the serial
path.
"""

from __future__ import annotations

import os
import sys
from typing import Iterable, List, Optional, Sequence, Tuple

from repro import (
    CongestionConfig,
    FlowWorkload,
    FluidNetwork,
    SiriusNetwork,
    SlotTiming,
    WorkloadConfig,
    pod_map_for,
)
from repro.perf import ParallelSweepRunner
from repro.units import KILOBYTE, MEGABYTE, NANOSECOND

# --- simulation scale ------------------------------------------------------
#: Racks in the simulated datacenter (paper: 128; reduced for pure Python).
N_NODES = int(os.environ.get("REPRO_BENCH_NODES", "32"))
#: AWGR ports; the epoch is this many slots (paper: 16).
GRATING_PORTS = int(os.environ.get("REPRO_BENCH_GRATING", "8"))
#: Flows per simulation run (paper: ~200,000).
N_FLOWS = int(os.environ.get("REPRO_BENCH_FLOWS", "1500"))
#: Mean flow size — the paper's 100 KB.
MEAN_FLOW_BITS = 100 * KILOBYTE
#: Pareto tail cap keeping single runs bounded (the mean is recalibrated).
TRUNCATION_BITS = 2 * MEGABYTE
#: Pod size for the ESN-OSUB baseline (aggregation subtree).
POD_SIZE = max(2, N_NODES // 4)

_REFERENCE = SiriusNetwork(
    N_NODES, GRATING_PORTS, uplink_multiplier=1.0
).reference_node_bandwidth_bps


def reference_bandwidth() -> float:
    """ESN-equivalent per-node bandwidth used for load and goodput."""
    return _REFERENCE


def make_workload(load: float, *, seed: int = 2,
                  mean_flow_bits: float = MEAN_FLOW_BITS,
                  n_nodes: int = N_NODES):
    """The paper's §7 workload at the requested load."""
    truncation = max(TRUNCATION_BITS, 4 * mean_flow_bits)
    return FlowWorkload(WorkloadConfig(
        n_nodes=n_nodes,
        load=load,
        node_bandwidth_bps=_REFERENCE,
        mean_flow_bits=mean_flow_bits,
        truncation_bits=truncation,
        seed=seed,
    ))


def run_sirius(load: float, *, multiplier: float = 1.5, q: int = 4,
               ideal: bool = False, guardband_ns: float = 10.0,
               header_bytes: int = 18,
               track_reorder: bool = False, seed: int = 1,
               mean_flow_bits: float = MEAN_FLOW_BITS,
               n_flows: int = None):
    """One Sirius simulation at the standard benchmark scale.

    ``header_bytes=0`` reproduces the paper's simulator, which treats
    the whole cell as payload; the default keeps a small realistic
    framing header.
    """
    timing = SlotTiming(guardband_s=guardband_ns * NANOSECOND,
                        header_bytes=header_bytes)
    net = SiriusNetwork(
        N_NODES, GRATING_PORTS,
        uplink_multiplier=multiplier,
        timing=timing,
        config=CongestionConfig(queue_threshold=q, ideal=ideal),
        track_reorder=track_reorder,
        seed=seed,
    )
    workload = make_workload(load, mean_flow_bits=mean_flow_bits)
    return net.run(workload.generate(n_flows or N_FLOWS))


def run_esn(load: float, *, oversubscription: Optional[float] = None,
            mean_flow_bits: float = MEAN_FLOW_BITS,
            n_flows: int = None):
    """One ESN (Ideal) / ESN-OSUB (Ideal) fluid simulation."""
    if oversubscription is None:
        net = FluidNetwork(N_NODES, _REFERENCE)
    else:
        net = FluidNetwork(
            N_NODES, _REFERENCE,
            pod_map=pod_map_for(N_NODES, POD_SIZE),
            pod_bandwidth_bps=POD_SIZE * _REFERENCE / oversubscription,
        )
    workload = make_workload(load, mean_flow_bits=mean_flow_bits)
    return net.run(workload.generate(n_flows or N_FLOWS))


# --- parallel sweeps -------------------------------------------------------
def _run_entry(entry: Tuple) -> object:
    """Trampoline for :func:`parallel_points` (module-level: picklable)."""
    fn, kwargs = entry
    return fn(**kwargs)


def parallel_points(entries: Sequence[Tuple], *,
                    workers: Optional[int] = None) -> List[object]:
    """Run ``(fn, kwargs)`` sweep entries over worker processes.

    ``fn`` must be module-level (typically :func:`run_sirius` or
    :func:`run_esn`); each entry is an independent, fully-seeded
    simulation, so the fan-out cannot perturb results.  Returns one
    result per entry, in submission order — positionally identical to
    ``[fn(**kwargs) for fn, kwargs in entries]``.
    """
    runner = ParallelSweepRunner(workers)
    return runner.map(_run_entry, list(entries))


# --- reporting ------------------------------------------------------------
#: Set per-test by benchmarks/conftest.py.
CAPTURE_MANAGER = None


def emit(line: str = "") -> None:
    """Print past pytest's capture so ``tee`` records the tables."""
    manager = CAPTURE_MANAGER
    if manager is not None:
        manager.suspend_global_capture(in_=False)
    try:
        print(line)
        sys.stdout.flush()
    finally:
        if manager is not None:
            manager.resume_global_capture()


def emit_table(title: str, headers: Sequence[str],
               rows: Iterable[Sequence[object]]) -> None:
    """Render an aligned text table to the benchmark log."""
    rows = [[_format(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    emit()
    emit(f"== {title} ==")
    emit("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        emit("  ".join(v.ljust(w) for v, w in zip(row, widths)))


def _format(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def us(seconds: Optional[float]) -> float:
    """Seconds → microseconds (None-safe for empty FCT populations)."""
    return 0.0 if seconds is None else seconds / 1e-6
