"""E18 — §2.2: production packet-size statistics and the reconfiguration
target they imply.

Paper: 34 % of packets < 128 B, 97.8 % <= 576 B (production cloud
service, Mar 2019); 91 % <= 576 B for Facebook's in-memory cache.  A
576 B packet lasts 92 ns at 50 Gb/s, so < 10 % switching overhead needs
reconfiguration below 9.2 ns — the < 10 ns design target.
"""

from _harness import emit_table

from repro import PacketTraceModel
from repro.workload.packets import (
    CACHE_MARGINALS,
    max_guardband_for_overhead,
    packet_duration_s,
    switching_overhead,
)


def test_packet_trace_marginals(benchmark):
    model = PacketTraceModel(seed=1)

    def stats():
        return {
            "below_128": model.fraction_below(128),
            "atmost_576": model.fraction_at_most(576),
        }

    measured = benchmark.pedantic(stats, rounds=1, iterations=1)
    cache = PacketTraceModel(marginals=CACHE_MARGINALS, seed=2)
    emit_table(
        "§2.2 — packet-size marginals (synthetic trace vs published)",
        ["statistic", "measured", "paper"],
        [
            ("production: packets < 128 B", measured["below_128"], 0.34),
            ("production: packets <= 576 B", measured["atmost_576"], 0.978),
            ("cache: packets <= 576 B", cache.fraction_at_most(576), 0.91),
        ],
    )
    assert abs(measured["below_128"] - 0.34) < 0.01
    assert abs(measured["atmost_576"] - 0.978) < 0.005


def test_reconfiguration_target_arithmetic(benchmark):
    duration = benchmark(lambda: packet_duration_s(576))
    budget = max_guardband_for_overhead(0.1)
    emit_table(
        "§2.2 — the <10 ns reconfiguration target",
        ["quantity", "measured", "paper"],
        [
            ("576 B packet at 50 Gb/s (ns)", duration / 1e-9, 92),
            ("guardband for <10% overhead (ns)", budget / 1e-9, 9.2),
            ("overhead at 3.84 ns prototype", switching_overhead(3.84e-9),
             "< 5%"),
        ],
    )
    assert abs(duration / 1e-9 - 92.16) < 0.1
    assert abs(budget / 1e-9 - 9.216) < 0.05
    assert switching_overhead(3.84e-9) < 0.05
