"""Cross-module integration tests: the paper's end-to-end claims."""

import pytest

from repro import (
    CongestionConfig,
    CyclicSchedule,
    Flow,
    FlowWorkload,
    FluidNetwork,
    SiriusNetwork,
    SiriusTopology,
    WorkloadConfig,
    pod_map_for,
)
from repro.units import KILOBYTE
from repro.workload.traffic_matrix import TrafficPattern, patterned_flows


class TestScheduleTopologyAgreement:
    def test_schedule_destinations_match_awgr_physics(self):
        """The wavelength the schedule assigns must physically route to
        the scheduled destination through the grating."""
        topo = SiriusTopology(32, 8, uplink_multiplier=2)
        schedule = CyclicSchedule(topo)
        for uplink in topo.iter_uplinks():
            for slot in range(schedule.slots_per_epoch):
                dst = schedule.destination(uplink, slot)
                wavelength = topo.wavelength_for(uplink, dst)
                assert wavelength == schedule.wavelength(slot)


class TestSiriusVsBaselines:
    """Coarse versions of the Fig 9 comparisons (full sweeps live in
    benchmarks/)."""

    N_NODES = 16
    GRATING = 4

    def _workload(self, load, n_flows=600, seed=11):
        reference = SiriusNetwork(
            self.N_NODES, self.GRATING, uplink_multiplier=1.0
        ).reference_node_bandwidth_bps
        config = WorkloadConfig(
            n_nodes=self.N_NODES, load=load,
            node_bandwidth_bps=reference,
            mean_flow_bits=40 * KILOBYTE,
            truncation_bits=4_000 * KILOBYTE,
            seed=seed,
        )
        return FlowWorkload(config), reference

    def test_sirius_approaches_esn_ideal_goodput(self):
        workload, reference = self._workload(load=0.5)
        flows_sirius = workload.generate(600)
        sirius = SiriusNetwork(
            self.N_NODES, self.GRATING, uplink_multiplier=2.0, seed=1,
        ).run(flows_sirius)
        workload2, _ = self._workload(load=0.5)
        esn = FluidNetwork(self.N_NODES, reference).run(workload2.generate(600))
        # Identical offered load; Sirius should deliver it all too.
        assert sirius.delivered_bits == pytest.approx(esn.delivered_bits)
        assert len(sirius.completed_flows) == len(esn.completed_flows)

    def test_oversubscribed_esn_loses_goodput_sirius_does_not(self):
        # ESN-OSUB at heavy inter-pod load is capacity-bound; Sirius'
        # flat network and ESN (Ideal) both drain the same offered load
        # faster.
        workload, reference = self._workload(load=1.0, n_flows=400)
        flows = workload.generate(400)

        osub = FluidNetwork(
            self.N_NODES, reference,
            pod_map=pod_map_for(self.N_NODES, 4),
            pod_bandwidth_bps=4 * reference / 3.0,
        ).run([Flow(f.flow_id, f.src, f.dst, f.size_bits, f.arrival_time)
               for f in flows])

        workload2, _ = self._workload(load=1.0, n_flows=400)
        sirius = SiriusNetwork(
            self.N_NODES, self.GRATING, uplink_multiplier=2.0, seed=2,
        ).run(workload2.generate(400))

        assert sirius.duration_s < osub.duration_s

    def test_sirius_ideal_bounds_sirius_fct(self):
        # At low load queuing is negligible and the comparison isolates
        # the request/grant round-trip (§7: the protocol's extra latency
        # versus SIRIUS (IDEAL) is largest at low load).
        workload, _ = self._workload(load=0.05, n_flows=300)
        flows_a = workload.generate(300)
        workload2, _ = self._workload(load=0.05, n_flows=300)
        flows_b = workload2.generate(300)

        protocol = SiriusNetwork(
            self.N_NODES, self.GRATING, uplink_multiplier=1.5, seed=3,
        ).run(flows_a)
        ideal = SiriusNetwork(
            self.N_NODES, self.GRATING, uplink_multiplier=1.5, seed=3,
            config=CongestionConfig(ideal=True),
        ).run(flows_b)
        # §7: the request/grant round-trip costs latency at low load.
        assert (ideal.fct_percentile(50, max_size_bits=None)
                < protocol.fct_percentile(50, max_size_bits=None))


class TestHotspotThroughput:
    def test_drrm_style_protocol_sustains_incast(self):
        """§4.3: the protocol achieves 100% throughput for hot-spot
        traffic — the destination's downlinks stay busy."""
        n = 8
        net = SiriusNetwork(n, 4, uplink_multiplier=1.0, seed=4)
        size = 200_000
        flows = patterned_flows(
            TrafficPattern("incast", n, hotspot_node=0),
            sizes_bits=[size] * 14, arrival_rate=1e9,
        )
        flows.sort(key=lambda f: f.arrival_time)
        result = net.run(flows)
        assert len(result.completed_flows) == 14
        # Received rate at the hotspot: total bits / duration must be a
        # large fraction of the node's receive capacity (N-1 slots of
        # N per epoch).
        received_rate = result.delivered_bits / result.duration_s
        capacity = net.reference_node_bandwidth_bps * (n - 1) / n
        assert received_rate > 0.6 * capacity

    def test_permutation_traffic_served_by_vlb(self):
        n = 8
        net = SiriusNetwork(n, 4, uplink_multiplier=1.0, seed=5)
        flows = patterned_flows(
            TrafficPattern("permutation", n),
            sizes_bits=[100_000] * 16, arrival_rate=1e9,
        )
        flows.sort(key=lambda f: f.arrival_time)
        result = net.run(flows)
        assert len(result.completed_flows) == 16


class TestPaperConfigurations:
    def test_paper_128_rack_setup_constructs(self):
        """§7's network: 128 racks, 16-port gratings, 8+4 uplinks."""
        net = SiriusNetwork(128, 16, uplink_multiplier=1.5)
        assert net.topology.n_blocks == 8
        assert net.topology.uplinks_per_node == 16  # ceil(1.5) replicas
        assert net.schedule.epoch_duration_s == pytest.approx(1.6e-6)
        assert net.reference_node_bandwidth_bps == pytest.approx(400e9)

    def test_small_run_on_paper_topology(self):
        net = SiriusNetwork(128, 16, uplink_multiplier=1.5, seed=6)
        flows = [Flow(0, 0, 64, size_bits=100_000, arrival_time=0.0)]
        result = net.run(flows)
        assert result.completion_fraction == 1.0
