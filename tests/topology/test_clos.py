"""Folded-Clos ESN baseline topology (paper §2, §7)."""

import pytest

from repro.topology import ClosTopology
from repro.topology.clos import layers_required
from repro.units import GBPS


class TestLayersRequired:
    def test_fig2a_scale_axis(self):
        # Fig 2a: 2(0), 64(1), 2K(2), 65K(3), 2M(4) with 64-port switches.
        assert layers_required(2, 64) == 0
        assert layers_required(64, 64) == 1
        assert layers_required(2048, 64) == 2
        assert layers_required(65536, 64) == 3
        assert layers_required(2_097_152, 64) == 4

    def test_boundaries(self):
        assert layers_required(65, 64) == 2
        assert layers_required(2049, 64) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            layers_required(1, 64)
        with pytest.raises(ValueError):
            layers_required(100, 63)  # odd radix


class TestStructure:
    def test_path_lengths(self):
        topo = ClosTopology(4096, radix=64)
        assert topo.n_layers == 3
        assert topo.max_switches_on_path == 5
        assert topo.max_transceivers_on_path == 6  # the paper's "up to six"

    def test_direct_connection(self):
        topo = ClosTopology(2, radix=64)
        assert topo.n_layers == 0
        assert topo.switch_count() == 0
        assert topo.transceiver_count() == 2

    def test_single_switch_network(self):
        topo = ClosTopology(64, radix=64)
        assert topo.switch_count() == 1
        assert topo.transceiver_count() == 2 * 64

    def test_switch_counts_consistent(self):
        topo = ClosTopology(4096, radix=64)
        counts = topo.tier_switch_counts()
        assert len(counts) == 3
        assert sum(counts) == topo.switch_count()
        # Bottom tier: 4096 nodes / 32 down-ports.
        assert counts[0] == 128
        # Top tier uses all 64 ports downward.
        assert counts[-1] == 64

    def test_oversubscription_reduces_upper_tiers(self):
        full = ClosTopology(4096, radix=64)
        osub = ClosTopology(4096, radix=64, oversubscription=3.0)
        assert osub.switch_count() < full.switch_count()
        assert osub.tier_switch_counts()[0] == full.tier_switch_counts()[0]
        assert osub.transceiver_count() < full.transceiver_count()

    def test_oversubscription_reduces_bisection(self):
        full = ClosTopology(4096, radix=64)
        osub = ClosTopology(4096, radix=64, oversubscription=3.0)
        assert osub.bisection_bandwidth_bps == pytest.approx(
            full.bisection_bandwidth_bps / 3.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ClosTopology(1)
        with pytest.raises(ValueError):
            ClosTopology(100, radix=7)
        with pytest.raises(ValueError):
            ClosTopology(100, oversubscription=0.5)


class TestPods:
    def test_small_network_single_pod(self):
        topo = ClosTopology(64, radix=64)
        pods = topo.pods()
        assert len(pods) == 1
        assert list(pods[0]) == list(range(64))

    def test_three_tier_pod_size(self):
        topo = ClosTopology(4096, radix=64)
        pods = topo.pods()
        # Pod = 32 x 32 nodes under one aggregation subtree.
        assert len(pods[0]) == 1024
        assert len(pods) == 4
        covered = sorted(n for pod in pods.values() for n in pod)
        assert covered == list(range(4096))

    def test_pod_uplink_bandwidth_shrinks_with_oversubscription(self):
        full = ClosTopology(4096, radix=64, port_rate_bps=400 * GBPS)
        osub = ClosTopology(4096, radix=64, port_rate_bps=400 * GBPS,
                            oversubscription=3.0)
        assert osub.pod_uplink_bandwidth_bps() == pytest.approx(
            full.pod_uplink_bandwidth_bps() / 3.0
        )
