"""Sirius flat topology (paper §4.1, Fig 5a)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import SiriusTopology
from repro.units import GBPS


class TestFig5aTopology:
    """The paper's 4-node, 2-uplink, 4-grating example."""

    def setup_method(self):
        self.topo = SiriusTopology(4, 2)

    def test_shape(self):
        assert self.topo.uplinks_per_node == 2
        assert self.topo.n_gratings == 4
        assert self.topo.n_blocks == 2

    def test_each_uplink_on_distinct_grating(self):
        for node in range(4):
            gratings = [u.grating for u in self.topo.uplinks(node)]
            assert len(set(gratings)) == len(gratings)

    def test_uplinks_cover_disjoint_blocks(self):
        for node in range(4):
            blocks = [u.reachable_block for u in self.topo.uplinks(node)]
            assert sorted(blocks) == [0, 1]

    def test_full_reachability(self):
        self.topo.validate_full_reachability()

    def test_single_direct_path_per_pair(self):
        # §4.1: "the topology provides direct connectivity between any
        # pairs of nodes through only one of their uplink ports".
        for src in range(4):
            for dst in range(4):
                assert len(self.topo.paths_to(src, dst)) == 1


class TestWavelengthAddressing:
    def test_wavelength_is_destination_proxy(self):
        topo = SiriusTopology(16, 4)
        for src in range(16):
            for dst in range(16):
                for uplink, wavelength in topo.paths_to(src, dst):
                    grating = topo.gratings[uplink.grating]
                    out = grating.output_port(uplink.input_port, wavelength)
                    assert uplink.reachable_block * 4 + out == dst

    def test_wrong_block_rejected(self):
        topo = SiriusTopology(4, 2)
        uplink_to_block0 = topo.uplinks(0)[0]
        with pytest.raises(ValueError):
            topo.wavelength_for(uplink_to_block0, 3)  # node 3 is block 1


class TestScaleExamples:
    def test_paper_scale_25600_racks(self):
        # §4.1: 256 uplinks x 100-port gratings -> 25,600 racks.  (Full
        # construction would allocate 65,536 gratings; check arithmetic
        # on a divided-down version and the counts formula directly.)
        topo = SiriusTopology(256, 16)
        assert topo.uplinks_per_node == 16
        assert topo.n_gratings == 256

    def test_4096_racks_through_16_port_gratings(self):
        topo = SiriusTopology(4096, 16)
        assert topo.uplinks_per_node == 256  # the paper's 256 uplinks
        topo._check_node(4095)

    def test_multiplier_replicates_uplinks(self):
        base = SiriusTopology(16, 4)
        doubled = SiriusTopology(16, 4, uplink_multiplier=2)
        assert doubled.uplinks_per_node == 2 * base.uplinks_per_node
        assert len(doubled.paths_to(0, 9)) == 2

    def test_fractional_multiplier_rejected_at_topology_level(self):
        with pytest.raises(ValueError):
            SiriusTopology(16, 4, uplink_multiplier=1.5)

    def test_indivisible_grating_ports_rejected(self):
        with pytest.raises(ValueError):
            SiriusTopology(10, 4)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            SiriusTopology(1, 1)


class TestBandwidth:
    def test_node_uplink_bandwidth(self):
        topo = SiriusTopology(128, 16, link_rate_bps=50 * GBPS)
        assert topo.uplinks_per_node == 8
        assert topo.node_uplink_bandwidth_bps == pytest.approx(400 * GBPS)

    def test_bisection_is_half_aggregate(self):
        topo = SiriusTopology(128, 16)
        assert topo.bisection_bandwidth_bps == pytest.approx(
            128 * topo.node_uplink_bandwidth_bps / 2
        )


class TestFibreDelays:
    def test_default_zero_lengths(self):
        topo = SiriusTopology(4, 2)
        assert topo.propagation_delay(0) == 0.0

    def test_pair_delay_sums_both_sides(self):
        topo = SiriusTopology(4, 2, fibre_lengths_m=[100, 200, 300, 400])
        assert topo.pair_propagation_delay(0, 3) == pytest.approx(
            topo.propagation_delay(0) + topo.propagation_delay(3)
        )

    def test_wrong_length_vector_rejected(self):
        with pytest.raises(ValueError):
            SiriusTopology(4, 2, fibre_lengths_m=[1.0, 2.0])


@settings(max_examples=25, deadline=None)
@given(
    blocks=st.integers(min_value=1, max_value=6),
    ports=st.integers(min_value=2, max_value=8),
    mult=st.integers(min_value=1, max_value=2),
)
def test_reachability_property(blocks, ports, mult):
    """Any valid (blocks x ports) topology reaches every node from every
    node, with exactly `mult` parallel paths."""
    n = blocks * ports
    if n < 2:
        return
    topo = SiriusTopology(n, ports, uplink_multiplier=mult)
    topo.validate_full_reachability()
    for src in (0, n - 1):
        for dst in (0, n // 2, n - 1):
            assert len(topo.paths_to(src, dst)) == mult
