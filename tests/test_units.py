"""Unit-conversion helpers."""

import math

import pytest

from repro import units


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_receiver_sensitivity_anchor(self):
        # -8 dBm is 0.16 mW, the paper's receiver sensitivity.
        assert units.dbm_to_mw(-8.0) == pytest.approx(0.158, abs=0.002)

    def test_sixteen_dbm_is_forty_milliwatts(self):
        assert units.dbm_to_mw(16.0) == pytest.approx(39.8, abs=0.2)

    def test_roundtrip(self):
        for dbm in (-20.0, -8.0, 0.0, 7.0, 16.0):
            assert units.mw_to_dbm(units.dbm_to_mw(dbm)) == pytest.approx(dbm)

    def test_mw_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.mw_to_dbm(0.0)
        with pytest.raises(ValueError):
            units.mw_to_dbm(-1.0)

    def test_db_ratio(self):
        assert units.db_ratio(10.0) == pytest.approx(10.0)
        assert units.db_ratio(2.0) == pytest.approx(3.0103, abs=1e-3)

    def test_db_ratio_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.db_ratio(0.0)

    def test_db_to_ratio_inverts(self):
        assert units.db_to_ratio(units.db_ratio(7.0)) == pytest.approx(7.0)


class TestFibreDelay:
    def test_500m_detour_is_about_2_5_us(self):
        # §4.2: a 500 m detour adds up to ~2.5 us of propagation latency.
        assert units.fibre_delay(500.0) == pytest.approx(2.5e-6, rel=0.03)

    def test_zero_distance(self):
        assert units.fibre_delay(0.0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            units.fibre_delay(-1.0)


class TestTransmissionTime:
    def test_cell_on_50g(self):
        # 4500 bits at 50 Gb/s is the paper's 90 ns cell transmission.
        assert units.transmission_time(4500, 50e9) == pytest.approx(90e-9)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, 0.0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            units.transmission_time(-1, 1e9)


class TestWavelengthGrid:
    def test_centre_channel_near_1550(self):
        wl = units.wavelength_nm(56, 112)
        assert abs(wl - 1550.0) < 1.0

    def test_channels_strictly_increasing_in_wavelength(self):
        wavelengths = [units.wavelength_nm(ch, 112) for ch in range(112)]
        assert wavelengths == sorted(wavelengths)
        assert len(set(wavelengths)) == 112

    def test_span_covers_c_band(self):
        # 112 channels at 50 GHz span ~44 nm around 1550 nm (C-band-ish).
        lo = units.wavelength_nm(0, 112)
        hi = units.wavelength_nm(111, 112)
        assert 30 < hi - lo < 60

    def test_adjacent_spacing_near_0_4_nm(self):
        # 50 GHz at 1550 nm is ~0.4 nm.
        a = units.wavelength_nm(50, 112)
        b = units.wavelength_nm(51, 112)
        assert b - a == pytest.approx(0.4, abs=0.05)

    def test_out_of_range_channel_rejected(self):
        with pytest.raises(ValueError):
            units.wavelength_nm(112, 112)
        with pytest.raises(ValueError):
            units.wavelength_nm(-1, 112)
