"""Run the doctest examples embedded in docstrings.

Docstring examples double as micro-specifications of the paper's
published numbers (7 dBm launch power, 92 ns cells, 3.84 ns guardband,
Fig 2a layer counts); this keeps them honest.
"""

import doctest

import pytest

import repro.core.schedule
import repro.optics.link_budget
import repro.phy.guardband
import repro.topology.clos
import repro.units
import repro.workload.packets

MODULES = (
    repro.units,
    repro.optics.link_budget,
    repro.topology.clos,
    repro.workload.packets,
    repro.phy.guardband,
    repro.core.schedule,
)


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{module.__name__}: {results.failed} doctest failures"
    )
