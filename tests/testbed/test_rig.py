"""Four-node prototype rig (paper §6)."""

import pytest

from repro.testbed import PrototypeRig
from repro.units import NANOSECOND, PICOSECOND


class TestSiriusV2:
    def setup_method(self):
        self.report = PrototypeRig("v2", seed=5).run(
            n_epochs=10, sync_epochs=3000
        )

    def test_guardband_is_3_84ns(self):
        assert self.report.guardband_s == pytest.approx(3.84 * NANOSECOND)

    def test_reconfiguration_fits_guardband(self):
        assert self.report.guardband_sufficient
        assert self.report.worst_reconfiguration_s < self.report.guardband_s

    def test_worst_tuning_below_912ps(self):
        assert self.report.worst_tuning_s <= 912 * PICOSECOND + 1e-15

    def test_error_free_operation(self):
        assert self.report.error_free
        assert self.report.bits_checked > 10_000

    def test_sync_within_5ps(self):
        assert self.report.sync_max_offset_s < 5 * PICOSECOND


class TestSiriusV1:
    def setup_method(self):
        self.report = PrototypeRig("v1", seed=5).run(
            n_epochs=10, sync_epochs=2000
        )

    def test_guardband_is_100ns(self):
        assert self.report.guardband_s == pytest.approx(100 * NANOSECOND)

    def test_reconfiguration_fits_guardband(self):
        assert self.report.guardband_sufficient

    def test_error_free_operation(self):
        assert self.report.error_free

    def test_v2_reconfigures_faster_than_v1(self):
        v2 = PrototypeRig("v2", seed=5).run(n_epochs=5, sync_epochs=500)
        assert (v2.worst_reconfiguration_s
                < self.report.worst_reconfiguration_s)


class TestValidation:
    def test_unknown_generation(self):
        with pytest.raises(ValueError):
            PrototypeRig("v3")

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            PrototypeRig("v2", n_nodes=1)

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            PrototypeRig("v2").run(n_epochs=0)
