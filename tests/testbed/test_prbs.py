"""PRBS generation and checking."""

import pytest

from repro.testbed import PRBSChecker, PRBSGenerator


class TestGenerator:
    def test_prbs7_period_is_127(self):
        gen = PRBSGenerator(7)
        sequence = gen.bits(127)
        assert gen.bits(127) == sequence  # repeats exactly
        assert gen.period == 127

    def test_sequence_is_balanced(self):
        # A maximal-length LFSR emits 2^(n-1) ones per period.
        ones = sum(PRBSGenerator(7).bits(127))
        assert ones == 64

    def test_all_nonzero_states_visited(self):
        gen = PRBSGenerator(7)
        states = set()
        for _ in range(127):
            gen.next_bit()
            states.add(gen._state)
        assert len(states) == 127

    def test_reset(self):
        gen = PRBSGenerator(7, seed=3)
        first = gen.bits(32)
        gen.reset()
        assert gen.bits(32) == first

    def test_different_seeds_shift_sequence(self):
        a = PRBSGenerator(7, seed=1).bits(20)
        b = PRBSGenerator(7, seed=2).bits(20)
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            PRBSGenerator(8)  # unsupported order
        with pytest.raises(ValueError):
            PRBSGenerator(7, seed=0)
        with pytest.raises(ValueError):
            PRBSGenerator(7, seed=1 << 7)
        with pytest.raises(ValueError):
            PRBSGenerator(7).bits(-1)


class TestChecker:
    def test_clean_channel_no_errors(self):
        gen = PRBSGenerator(7, seed=5)
        checker = PRBSChecker(7, seed=5)
        assert checker.check(gen.bits(500)) == 0
        assert checker.ber == 0.0
        assert checker.error_free()

    def test_detects_every_flip(self):
        gen = PRBSGenerator(7, seed=5)
        checker = PRBSChecker(7, seed=5)
        bits = gen.bits(100)
        bits[10] ^= 1
        bits[90] ^= 1
        assert checker.check(bits) == 2
        assert checker.ber == pytest.approx(0.02)
        assert not checker.error_free()

    def test_accumulates_across_chunks(self):
        gen = PRBSGenerator(7, seed=5)
        checker = PRBSChecker(7, seed=5)
        checker.check(gen.bits(50))
        checker.check(gen.bits(50))
        assert checker.bits_checked == 100

    def test_rejects_non_bits(self):
        checker = PRBSChecker(7)
        with pytest.raises(ValueError):
            checker.check([0, 1, 2])
