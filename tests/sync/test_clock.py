"""Drifting clock model."""

import random

import pytest

from repro.sync import DriftingClock


class TestDrift:
    def test_phase_accumulates_with_frequency_error(self):
        clock = DriftingClock(ppm_error=10.0, wander_ppm_per_s=0.0)
        clock.advance(1.0)
        assert clock.phase_s == pytest.approx(10e-6)

    def test_perfect_clock_stays_put(self):
        clock = DriftingClock(0.0, wander_ppm_per_s=0.0)
        clock.advance(100.0)
        assert clock.phase_s == 0.0

    def test_wander_stays_within_bound(self):
        clock = DriftingClock(0.0, wander_ppm_per_s=50.0, max_abs_ppm=10.0,
                              rng=random.Random(1))
        for _ in range(1000):
            clock.advance(1.0)
            assert abs(clock.ppm_error) <= 10.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            DriftingClock().advance(-1.0)

    def test_initial_error_must_respect_bound(self):
        with pytest.raises(ValueError):
            DriftingClock(ppm_error=200.0, max_abs_ppm=100.0)


class TestDiscipline:
    def test_slew_adjusts_phase(self):
        clock = DriftingClock(0.0, wander_ppm_per_s=0.0, phase_s=5e-12)
        clock.slew_phase(-5e-12)
        assert clock.phase_s == 0.0

    def test_frequency_discipline_counteracts_error(self):
        clock = DriftingClock(10.0, wander_ppm_per_s=0.0)
        clock.adjust_frequency(-10.0)
        assert clock.effective_ppm == pytest.approx(0.0)
        clock.advance(1.0)
        assert clock.phase_s == pytest.approx(0.0)

    def test_dll_clamp_limits_byzantine_steps(self):
        clock = DriftingClock(0.0, wander_ppm_per_s=0.0)
        applied = clock.adjust_frequency(1000.0, max_step_ppm=5.0)
        assert applied == 5.0
        assert clock.discipline_ppm == 5.0

    def test_offset_from(self):
        a = DriftingClock(phase_s=7e-12)
        b = DriftingClock(phase_s=2e-12)
        assert a.offset_from(b) == pytest.approx(5e-12)
