"""Leader-rotation time synchronization (paper §4.4, §6)."""

import pytest

from repro.sync import SyncConfig, SyncProtocol
from repro.sync.protocol import make_clock_ensemble
from repro.units import PICOSECOND


class TestAccuracy:
    def test_two_nodes_within_5ps(self):
        # §6: ±5 ps between two FPGAs over 24 h.
        proto = SyncProtocol(make_clock_ensemble(2, seed=9))
        result = proto.run(20_000, warmup_epochs=4_000)
        assert result.max_abs_offset_s < 5 * PICOSECOND

    def test_many_nodes_within_100ps(self):
        # §4.4's requirement: sub-100 ps across all nodes.
        proto = SyncProtocol(make_clock_ensemble(16, seed=2))
        result = proto.run(10_000, warmup_epochs=3_000)
        assert result.max_abs_offset_s < 100 * PICOSECOND

    def test_undisciplined_clocks_drift_far_past_5ps(self):
        clocks = make_clock_ensemble(2, seed=9)
        for _ in range(10_000):
            for clock in clocks:
                clock.advance(1.6e-6)
        assert abs(clocks[0].offset_from(clocks[1])) > 100 * PICOSECOND

    def test_trace_collection(self):
        proto = SyncProtocol(make_clock_ensemble(2, seed=1))
        result = proto.run(500, warmup_epochs=100, trace=True)
        assert len(result.offsets_trace_s) == 500
        assert result.max_abs_offset_ps > 0


class TestLeaderRotation:
    def test_round_robin(self):
        proto = SyncProtocol(make_clock_ensemble(4),
                             SyncConfig(rotation_epochs=2))
        leaders = [proto.leader_at(e) for e in range(8)]
        assert leaders == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_failed_leader_skipped(self):
        proto = SyncProtocol(make_clock_ensemble(4),
                             SyncConfig(rotation_epochs=1))
        proto.fail_node(1)
        assert proto.leader_at(1) == 2

    def test_sync_survives_leader_failure(self):
        # §4.4: a failed leader is replaced within microseconds with no
        # noticeable drift.
        proto = SyncProtocol(make_clock_ensemble(4, seed=3))
        proto.run(5_000, warmup_epochs=2_000)
        proto.fail_node(0)
        result = proto.run(5_000, warmup_epochs=0)
        assert result.max_abs_offset_s < 20 * PICOSECOND

    def test_recovery(self):
        proto = SyncProtocol(make_clock_ensemble(4))
        proto.fail_node(2)
        proto.recover_node(2)
        assert proto.leader_at(2 * proto.config.rotation_epochs) == 2

    def test_all_failed_raises(self):
        proto = SyncProtocol(make_clock_ensemble(2))
        proto.fail_node(0)
        with pytest.raises(RuntimeError):
            proto.fail_node(1)


class TestValidation:
    def test_config_bounds(self):
        with pytest.raises(ValueError):
            SyncConfig(epoch_s=0.0)
        with pytest.raises(ValueError):
            SyncConfig(rotation_epochs=0)
        with pytest.raises(ValueError):
            SyncConfig(phase_gain=0.0)
        with pytest.raises(ValueError):
            SyncConfig(freq_gain=-1.0)

    def test_needs_two_clocks(self):
        with pytest.raises(ValueError):
            SyncProtocol(make_clock_ensemble(1))

    def test_run_validation(self):
        proto = SyncProtocol(make_clock_ensemble(2))
        with pytest.raises(ValueError):
            proto.run(0)
        with pytest.raises(ValueError):
            proto.leader_at(-1)

    def test_node_bounds(self):
        proto = SyncProtocol(make_clock_ensemble(2))
        with pytest.raises(ValueError):
            proto.fail_node(5)
