"""Propagation-delay estimation and slot alignment (paper §A.2)."""

import random

import pytest

from repro.sync import DelayEstimator, epoch_start_offsets, verify_slot_alignment
from repro.units import PICOSECOND, fibre_delay


class TestEstimation:
    def test_estimate_close_to_truth(self):
        estimator = DelayEstimator(timestamp_noise_s=2e-12,
                                   rng=random.Random(1))
        error = estimator.estimation_error(250.0, n_probes=64)
        assert error < 2 * PICOSECOND

    def test_averaging_reduces_error(self):
        few = DelayEstimator(timestamp_noise_s=20e-12, rng=random.Random(2))
        many = DelayEstimator(timestamp_noise_s=20e-12, rng=random.Random(2))
        few_err = sum(few.estimation_error(100.0, 4) for _ in range(50))
        many_err = sum(many.estimation_error(100.0, 256) for _ in range(50))
        assert many_err < few_err

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayEstimator(timestamp_noise_s=-1.0)
        with pytest.raises(ValueError):
            DelayEstimator().measure(100.0, n_probes=0)


class TestOffsets:
    def test_far_nodes_start_earlier(self):
        lengths = [10.0, 500.0]
        offsets = epoch_start_offsets(lengths)
        # offset is the wait after the earliest start: the far node (500m)
        # waits 0, the near node waits the delay difference.
        assert offsets[1] == 0.0
        assert offsets[0] == pytest.approx(
            fibre_delay(500.0) - fibre_delay(10.0)
        )

    def test_equal_lengths_zero_offsets(self):
        offsets = epoch_start_offsets([100.0, 100.0, 100.0])
        assert offsets == [0.0, 0.0, 0.0]

    def test_alignment_exact_without_noise(self):
        lengths = [5.0, 123.0, 456.0, 321.0]
        offsets = epoch_start_offsets(lengths)
        spread = verify_slot_alignment(lengths, offsets, tolerance_s=1e-15)
        assert spread == pytest.approx(0.0, abs=1e-18)

    def test_alignment_within_guard_budget_with_noise(self):
        # §4.5 budgets tens of ps of sync error inside the guardband.
        lengths = [random.Random(3).uniform(10, 500) for _ in range(16)]
        estimator = DelayEstimator(timestamp_noise_s=2e-12,
                                   rng=random.Random(4))
        offsets = epoch_start_offsets(lengths, estimator, n_probes=128)
        spread = verify_slot_alignment(lengths, offsets,
                                       tolerance_s=10 * PICOSECOND)
        assert spread < 10 * PICOSECOND

    def test_misalignment_detected(self):
        lengths = [10.0, 500.0]
        with pytest.raises(AssertionError):
            verify_slot_alignment(lengths, [0.0, 0.0], tolerance_s=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            epoch_start_offsets([])
        with pytest.raises(ValueError):
            verify_slot_alignment([1.0], [0.0, 0.0], 1e-9)
        with pytest.raises(ValueError):
            verify_slot_alignment([1.0], [0.0], 0.0)
