"""Max-min-fair fluid simulator: the ESN (Ideal) baselines (paper §7)."""

import pytest

from repro.core import Flow
from repro.sim import FluidNetwork, pod_map_for


def flow(fid, src, dst, size, arrival=0.0):
    return Flow(fid, src, dst, size_bits=size, arrival_time=arrival)


class TestAnalyticCases:
    def test_lone_flow_gets_full_nic_rate(self):
        net = FluidNetwork(4, 100e9, base_rtt_s=0.0)
        result = net.run([flow(0, 0, 1, size=100e9)])
        # 100 Gbit at 100 Gb/s: exactly one second.
        assert result.completed_flows[0].fct == pytest.approx(1.0, rel=1e-6)

    def test_two_flows_share_a_transmit_nic(self):
        net = FluidNetwork(4, 100e9, base_rtt_s=0.0)
        flows = [flow(0, 0, 1, size=100e9), flow(1, 0, 2, size=100e9)]
        result = net.run(flows)
        for f in result.completed_flows:
            assert f.fct == pytest.approx(2.0, rel=1e-6)

    def test_two_flows_share_a_receive_nic(self):
        net = FluidNetwork(4, 100e9, base_rtt_s=0.0)
        flows = [flow(0, 0, 2, size=100e9), flow(1, 1, 2, size=100e9)]
        result = net.run(flows)
        for f in result.completed_flows:
            assert f.fct == pytest.approx(2.0, rel=1e-6)

    def test_disjoint_flows_do_not_interact(self):
        net = FluidNetwork(4, 100e9, base_rtt_s=0.0)
        flows = [flow(0, 0, 1, size=100e9), flow(1, 2, 3, size=100e9)]
        result = net.run(flows)
        for f in result.completed_flows:
            assert f.fct == pytest.approx(1.0, rel=1e-6)

    def test_maxmin_not_just_equal_split(self):
        # Flows: A: 0->1, B: 0->2, C: 3->2.  TX(0) is shared by A,B;
        # RX(2) by B,C.  Max-min: B gets 50, then A and C top up to 50
        # each... all equal here; use asymmetric: add D: 3->2 making
        # RX(2) the tighter bottleneck for B.
        net = FluidNetwork(6, 90e9, base_rtt_s=0.0)
        flows = [
            flow(0, 0, 1, size=90e9),   # A
            flow(1, 0, 2, size=90e9),   # B
            flow(2, 3, 2, size=90e9),   # C
            flow(3, 4, 2, size=90e9),   # D
        ]
        result = net.run(flows)
        fcts = {f.flow_id: f.fct for f in result.completed_flows}
        # RX(2) splits 3 ways -> B, C, D at 30; A then gets 60 on TX(0).
        assert fcts[2] == pytest.approx(3.0, rel=1e-6)
        assert fcts[3] == pytest.approx(3.0, rel=1e-6)
        assert fcts[0] < fcts[1]

    def test_completion_releases_bandwidth(self):
        net = FluidNetwork(4, 100e9, base_rtt_s=0.0)
        flows = [flow(0, 0, 1, size=50e9), flow(1, 0, 2, size=100e9)]
        result = net.run(flows)
        fcts = {f.flow_id: f.fct for f in result.completed_flows}
        # Both run at 50 until flow 0 finishes at t=1; flow 1 then runs
        # at 100 for its remaining 50 Gbit: done at t=1.5.
        assert fcts[0] == pytest.approx(1.0, rel=1e-6)
        assert fcts[1] == pytest.approx(1.5, rel=1e-6)


class TestPodConstraints:
    def test_interpod_flows_squeeze_through_pod_uplink(self):
        pods = pod_map_for(4, 2)
        net = FluidNetwork(4, 100e9, pod_map=pods,
                           pod_bandwidth_bps=50e9, base_rtt_s=0.0)
        result = net.run([flow(0, 0, 2, size=50e9)])
        # Pod uplink (50) binds before the NIC (100).
        assert result.completed_flows[0].fct == pytest.approx(1.0, rel=1e-6)

    def test_intrapod_flows_bypass_the_uplink(self):
        pods = pod_map_for(4, 2)
        net = FluidNetwork(4, 100e9, pod_map=pods,
                           pod_bandwidth_bps=50e9, base_rtt_s=0.0)
        result = net.run([flow(0, 0, 1, size=100e9)])  # same pod
        assert result.completed_flows[0].fct == pytest.approx(1.0, rel=1e-6)

    def test_pod_map_validation(self):
        with pytest.raises(ValueError):
            pod_map_for(10, 3)
        with pytest.raises(ValueError):
            FluidNetwork(4, 1e9, pod_map=[0, 0], pod_bandwidth_bps=1e9)
        with pytest.raises(ValueError):
            FluidNetwork(4, 1e9, pod_map=[0, 0, 1, 1])  # missing bandwidth


class TestConservationAndMetrics:
    def test_all_bits_delivered(self):
        net = FluidNetwork(8, 10e9)
        flows = [
            flow(i, i % 8, (i + 3) % 8, size=1e6, arrival=i * 1e-5)
            for i in range(20)
        ]
        result = net.run(flows)
        assert result.delivered_bits == pytest.approx(result.offered_bits)
        assert len(result.completed_flows) == 20

    def test_base_rtt_added_to_fct(self):
        fast = FluidNetwork(4, 100e9, base_rtt_s=0.0)
        slow = FluidNetwork(4, 100e9, base_rtt_s=1e-3)
        f1 = slow.run([flow(0, 0, 1, size=1e9)]).completed_flows[0].fct
        f2 = fast.run([flow(0, 0, 1, size=1e9)]).completed_flows[0].fct
        assert f1 - f2 == pytest.approx(1e-3, rel=1e-6)

    def test_max_duration_truncates(self):
        net = FluidNetwork(4, 1e9, base_rtt_s=0.0)
        result = net.run([flow(0, 0, 1, size=1e9)], max_duration_s=0.5)
        assert result.completed_flows == []
        assert result.delivered_bits == pytest.approx(0.5e9)

    def test_unsorted_arrivals_rejected(self):
        net = FluidNetwork(4, 1e9)
        flows = [flow(0, 0, 1, 100, arrival=1.0),
                 flow(1, 0, 1, 100, arrival=0.0)]
        with pytest.raises(ValueError):
            net.run(flows)

    def test_fct_percentile(self):
        net = FluidNetwork(4, 1e9, base_rtt_s=0.0)
        flows = [flow(i, 0, 1, size=1000 * (i + 1), arrival=float(i))
                 for i in range(5)]
        result = net.run(flows)
        assert result.fct_percentile(99, max_size_bits=None) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            FluidNetwork(1, 1e9)
        with pytest.raises(ValueError):
            FluidNetwork(4, 0.0)
        with pytest.raises(ValueError):
            FluidNetwork(4, 1e9, base_rtt_s=-1.0)


class TestOversubscriptionHurts:
    def test_osub_has_lower_goodput_under_interpod_load(self):
        flows = [
            flow(i, i % 4, 4 + (i % 4), size=5e8, arrival=0.0)
            for i in range(8)
        ]
        ideal = FluidNetwork(8, 1e9).run([
            flow(i, i % 4, 4 + (i % 4), size=5e8, arrival=0.0)
            for i in range(8)
        ])
        osub = FluidNetwork(
            8, 1e9, pod_map=pod_map_for(8, 4), pod_bandwidth_bps=4e9 / 3,
        ).run(flows)
        assert osub.duration_s > ideal.duration_s
        assert osub.normalized_goodput < ideal.normalized_goodput
