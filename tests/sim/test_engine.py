"""Discrete-event engine."""

import pytest

from repro.sim import CompletionQueue, EventLoop


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda l, p: fired.append(p), "c")
        loop.schedule(1.0, lambda l, p: fired.append(p), "a")
        loop.schedule(2.0, lambda l, p: fired.append(p), "b")
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in ("first", "second", "third"):
            loop.schedule(1.0, lambda l, p: fired.append(p), tag)
        loop.run()
        assert fired == ["first", "second", "third"]

    def test_callbacks_can_schedule_more_events(self):
        loop = EventLoop()
        fired = []

        def chain(l, depth):
            fired.append(depth)
            if depth < 3:
                l.schedule(1.0, chain, depth + 1)

        loop.schedule(0.0, chain, 0)
        loop.run()
        assert fired == [0, 1, 2, 3]
        assert loop.now == pytest.approx(3.0)

    def test_cannot_schedule_in_the_past(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda l, p: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_at(1.0, lambda l, p: None)
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda l, p: None)


class TestControl:
    def test_cancelled_events_are_skipped(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, lambda l, p: fired.append("cancelled"))
        loop.schedule(2.0, lambda l, p: fired.append("kept"))
        event.cancel()
        loop.run()
        assert fired == ["kept"]

    def test_run_until_stops_the_clock(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda l, p: fired.append(1))
        loop.schedule(10.0, lambda l, p: fired.append(2))
        loop.run(until=5.0)
        assert fired == [1]
        assert loop.now == pytest.approx(5.0)
        loop.run()
        assert fired == [1, 2]

    def test_max_events_budget(self):
        loop = EventLoop()
        fired = []
        for k in range(5):
            loop.schedule(float(k), lambda l, p: fired.append(p), k)
        loop.run(max_events=2)
        assert fired == [0, 1]

    def test_len_counts_live_events(self):
        loop = EventLoop()
        e1 = loop.schedule(1.0, lambda l, p: None)
        loop.schedule(2.0, lambda l, p: None)
        e1.cancel()
        assert len(loop) == 1

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        e1 = loop.schedule(1.0, lambda l, p: None)
        loop.schedule(2.0, lambda l, p: None)
        e1.cancel()
        assert loop.peek_time() == pytest.approx(2.0)

    def test_reentrant_run_rejected(self):
        loop = EventLoop()

        def reenter(l, p):
            with pytest.raises(RuntimeError):
                l.run()

        loop.schedule(0.0, reenter)
        loop.run()


class TestCompletionQueue:
    def test_orders_by_time_then_seq(self):
        q = CompletionQueue()
        q.push(2.0, 0, "b")
        q.push(1.0, 1, "a")
        q.push(2.0, 2, "c")
        assert q.pop() == (1.0, 1, "a")
        assert q.pop() == (2.0, 0, "b")
        assert q.pop() == (2.0, 2, "c")

    def test_tie_resolves_by_seq_like_first_minimum_scan(self):
        # Bit-equal times: the lower seq (earlier arrival) wins, the
        # same winner a first-minimum linear scan in insertion order
        # would pick.
        q = CompletionQueue()
        q.push(5.0, 7, "late")
        q.push(5.0, 3, "early")
        assert q.pop()[2] == "early"

    def test_push_supersedes_previous_entry(self):
        q = CompletionQueue()
        q.push(1.0, 0, "f")
        q.push(9.0, 0, "f")
        assert len(q) == 1
        assert q.pop() == (9.0, 0, "f")
        assert q.peek() is None

    def test_invalidate_drops_live_entry(self):
        q = CompletionQueue()
        q.push(1.0, 0, "f")
        q.push(2.0, 1, "g")
        q.invalidate("f")
        assert len(q) == 1
        assert q.peek() == (2.0, 1, "g")

    def test_invalidate_is_idempotent_and_tolerates_unknown(self):
        q = CompletionQueue()
        q.push(1.0, 0, "f")
        q.invalidate("f")
        q.invalidate("f")
        q.invalidate("never-pushed")
        assert len(q) == 0
        assert q.peek() is None

    def test_reprice_after_invalidate(self):
        q = CompletionQueue()
        q.push(1.0, 0, "f")
        q.invalidate("f")
        q.push(3.0, 0, "f")
        assert q.pop() == (3.0, 0, "f")

    def test_pop_empty_raises(self):
        q = CompletionQueue()
        with pytest.raises(IndexError):
            q.pop()

    def test_stale_entries_pruned_lazily(self):
        q = CompletionQueue()
        for t in (5.0, 4.0, 3.0, 2.0):
            q.push(t, 0, "f")
        q.push(1.0, 1, "g")
        assert len(q) == 2
        assert q.pop() == (1.0, 1, "g")
        assert q.pop() == (2.0, 0, "f")
        assert len(q) == 0

    def test_len_counts_live_only(self):
        q = CompletionQueue()
        q.push(1.0, 0, "a")
        q.push(2.0, 0, "a")
        q.push(3.0, 1, "b")
        q.invalidate("b")
        assert len(q) == 1
