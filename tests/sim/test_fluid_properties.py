"""Property-based tests of the max-min fluid allocator.

Invariants of any correct max-min fair allocation:

* feasibility — no resource is oversubscribed;
* non-starvation — every active flow gets a positive rate;
* max-min optimality — a flow's rate can only be below another's if
  the smaller flow is bottlenecked (shares a saturated resource with
  no slack);
* work conservation — every flow is bottlenecked somewhere.
"""

from hypothesis import given, settings, strategies as st

from repro.core.cell import Flow
from repro.sim.fluid import FluidNetwork

CAPACITY = 100.0


@st.composite
def flow_sets(draw):
    n_nodes = draw(st.integers(2, 8))
    n_flows = draw(st.integers(1, 14))
    flows = {}
    for fid in range(n_flows):
        src = draw(st.integers(0, n_nodes - 1))
        offset = draw(st.integers(1, n_nodes - 1))
        flows[fid] = Flow(fid, src, (src + offset) % n_nodes,
                          size_bits=1000, arrival_time=0.0)
    return n_nodes, flows


def allocate(n_nodes, flows):
    net = FluidNetwork(n_nodes, CAPACITY)
    active = {
        fid: net._flow_resources(flow) for fid, flow in flows.items()
    }
    return net, active, net.maxmin_rates(active)


@settings(max_examples=80, deadline=None)
@given(data=flow_sets())
def test_feasible_and_non_starving(data):
    n_nodes, flows = data
    _net, active, rates = allocate(n_nodes, flows)
    usage = {}
    for fid, resources in active.items():
        assert rates[fid] > 0.0, "max-min never starves a flow"
        for resource in resources:
            usage[resource] = usage.get(resource, 0.0) + rates[fid]
    for resource, used in usage.items():
        assert used <= CAPACITY * (1 + 1e-6), resource


@settings(max_examples=80, deadline=None)
@given(data=flow_sets())
def test_every_flow_is_bottlenecked(data):
    """Work conservation: each flow touches at least one saturated
    resource (otherwise its rate could be raised)."""
    n_nodes, flows = data
    _net, active, rates = allocate(n_nodes, flows)
    usage = {}
    for fid, resources in active.items():
        for resource in resources:
            usage[resource] = usage.get(resource, 0.0) + rates[fid]
    for fid, resources in active.items():
        saturated = any(
            usage[resource] >= CAPACITY * (1 - 1e-6)
            for resource in resources
        )
        assert saturated, f"flow {fid} has slack everywhere"


@settings(max_examples=60, deadline=None)
@given(data=flow_sets())
def test_maxmin_ordering(data):
    """If flow A's rate < flow B's rate, A must share a saturated
    resource with flows of rate <= A's (A is genuinely bottlenecked,
    not merely unlucky)."""
    n_nodes, flows = data
    _net, active, rates = allocate(n_nodes, flows)
    usage = {}
    members = {}
    for fid, resources in active.items():
        for resource in resources:
            usage[resource] = usage.get(resource, 0.0) + rates[fid]
            members.setdefault(resource, []).append(fid)
    for fid, resources in active.items():
        bottlenecks = [
            resource for resource in resources
            if usage[resource] >= CAPACITY * (1 - 1e-6)
        ]
        assert bottlenecks
        # On some bottleneck, this flow is among the maximum-rate flows
        # (the defining property of max-min fairness).
        assert any(
            rates[fid] >= max(rates[other] for other in members[resource])
            - 1e-6
            for resource in bottlenecks
        ), f"flow {fid} could steal from a larger flow"
