"""Incremental-vs-reference fluid engine parity (bit-identical).

The incremental event loop keeps persistent max-min state and a
completion heap; the reference loop rebuilds everything per event.
Both execute the same float expressions in the same order, so seeded
runs must agree *exactly* — every fingerprint comparison here is
``==`` on floats, no tolerance.  The level-filling allocator both
loops share is additionally pinned against the retained
progressive-filling oracle (:meth:`FluidNetwork.maxmin_rates`), to
relative tolerance, since the two algorithms agree only in exact
arithmetic.
"""

import random

import pytest

from repro.core import Flow
from repro.sim import FluidNetwork, pod_map_for
from repro.units import KILOBYTE, MEGABYTE
from repro.workload import FlowWorkload, WorkloadConfig

BANDWIDTH = 4e11


def _workload(n_nodes, n_flows, *, load=0.5, seed=5,
              mean=100 * KILOBYTE, truncation=2 * MEGABYTE):
    return FlowWorkload(WorkloadConfig(
        n_nodes=n_nodes,
        load=load,
        node_bandwidth_bps=BANDWIDTH,
        mean_flow_bits=mean,
        truncation_bits=truncation,
        seed=seed,
    )).generate(n_flows)


def _fingerprint(result):
    """Every externally visible field, floats compared exactly."""
    return (
        result.duration_s,
        result.delivered_bits,
        result.offered_bits,
        result.events,
        tuple((f.flow_id, f.completion_time, f.delivered_cells)
              for f in result.flows),
    )


def _run_pair(flows_factory, *, max_duration_s=None, **net_kwargs):
    results = []
    for backend in ("incremental", "reference"):
        net = FluidNetwork(backend=backend, **net_kwargs)
        results.append(net.run(flows_factory(),
                               max_duration_s=max_duration_s))
    return results


class TestSeededParity:
    """Randomized workloads across the topology/config matrix."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_flat_network(self, seed):
        inc, ref = _run_pair(
            lambda: _workload(32, 150, seed=seed),
            n_nodes=32, node_bandwidth_bps=BANDWIDTH,
        )
        assert _fingerprint(inc) == _fingerprint(ref)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_oversubscribed_pods(self, seed):
        # 3:1 oversubscription: pod up/down links are shared, so most
        # events genuinely re-rate many flows — the worst case for the
        # incremental engine's touched-set bookkeeping.
        inc, ref = _run_pair(
            lambda: _workload(32, 150, seed=seed, load=0.7),
            n_nodes=32, node_bandwidth_bps=BANDWIDTH,
            pod_map=pod_map_for(32, 8),
            pod_bandwidth_bps=8 * BANDWIDTH / 3.0,
        )
        assert _fingerprint(inc) == _fingerprint(ref)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_truncated_run(self, seed):
        # Truncation settles every in-flight flow mid-transfer: the
        # partial-drain accounting must agree bit-for-bit too.
        flows = _workload(16, 120, seed=seed)
        horizon = flows[len(flows) // 2].arrival_time
        inc, ref = _run_pair(
            lambda: _workload(16, 120, seed=seed),
            max_duration_s=horizon,
            n_nodes=16, node_bandwidth_bps=BANDWIDTH,
        )
        assert _fingerprint(inc) == _fingerprint(ref)
        assert inc.duration_s == horizon

    def test_truncation_before_first_event(self):
        inc, ref = _run_pair(
            lambda: [Flow(0, 0, 1, size_bits=1e9, arrival_time=1.0)],
            max_duration_s=0.5,
            n_nodes=4, node_bandwidth_bps=BANDWIDTH,
        )
        assert _fingerprint(inc) == _fingerprint(ref)
        assert inc.delivered_bits == 0.0


class TestAdversarialShapes:
    """Hand-built corners the random matrix is unlikely to hit."""

    def test_simultaneous_arrivals_tie_heavy(self):
        # Many flows arriving at the same instant onto the same
        # resources: saturation-level ties everywhere, resolved by the
        # deterministic (level, resource) tie-break in both loops.
        def flows():
            out = []
            for i in range(24):
                out.append(Flow(i, i % 4, (i % 4 + 1 + i % 3) % 8,
                                size_bits=10 * KILOBYTE * (1 + i % 5),
                                arrival_time=0.0))
            for i in range(24, 36):
                out.append(Flow(i, i % 8, (i + 5) % 8,
                                size_bits=25 * KILOBYTE,
                                arrival_time=1e-6))
            return out
        inc, ref = _run_pair(flows, n_nodes=8,
                             node_bandwidth_bps=BANDWIDTH)
        assert _fingerprint(inc) == _fingerprint(ref)

    def test_identical_flows_complete_together(self):
        # Bit-equal completion instants: the reference linear scan
        # picks the first stored flow; the heap's (time, arrival) key
        # must pick the same one.
        def flows():
            return [Flow(i, 0, 1, size_bits=80 * KILOBYTE,
                         arrival_time=0.0) for i in range(6)]
        inc, ref = _run_pair(flows, n_nodes=4,
                             node_bandwidth_bps=BANDWIDTH)
        assert _fingerprint(inc) == _fingerprint(ref)

    def test_randomized_same_instant_batches(self):
        # Arrival batches at repeated instants with random sizes:
        # stresses arrival-order settle vs heap order.
        rng = random.Random(11)
        built = []
        fid = 0
        for batch in range(10):
            at = batch * 5e-6
            for _ in range(rng.randint(1, 6)):
                src = rng.randrange(8)
                dst = (src + 1 + rng.randrange(7)) % 8
                built.append(Flow(fid, src, dst,
                                  size_bits=rng.uniform(1, 200) * KILOBYTE,
                                  arrival_time=at))
                fid += 1
        inc, ref = _run_pair(lambda: [Flow(f.flow_id, f.src, f.dst,
                                           size_bits=f.size_bits,
                                           arrival_time=f.arrival_time)
                                      for f in built],
                             n_nodes=8, node_bandwidth_bps=BANDWIDTH)
        assert _fingerprint(inc) == _fingerprint(ref)

    def test_self_loops_excluded_by_workload(self):
        # Degenerate two-node pattern: every flow shares both
        # resources, so every event re-rates everything.
        def flows():
            return [Flow(i, i % 2, (i + 1) % 2,
                         size_bits=50 * KILOBYTE,
                         arrival_time=i * 1e-7) for i in range(40)]
        inc, ref = _run_pair(flows, n_nodes=2,
                             node_bandwidth_bps=BANDWIDTH)
        assert _fingerprint(inc) == _fingerprint(ref)

    def test_zero_rate_corner_intra_pod_starvation(self):
        # A pod link so tight that inter-pod flows are pinned near
        # zero while intra-pod flows run at line rate.
        def flows():
            return (
                [Flow(i, 0, 1, size_bits=MEGABYTE, arrival_time=0.0)
                 for i in range(3)]
                + [Flow(3 + i, 0, 4, size_bits=10 * KILOBYTE,
                        arrival_time=0.0) for i in range(3)]
            )
        inc, ref = _run_pair(
            flows, n_nodes=8, node_bandwidth_bps=BANDWIDTH,
            pod_map=pod_map_for(8, 4),
            pod_bandwidth_bps=BANDWIDTH / 1000.0,
        )
        assert _fingerprint(inc) == _fingerprint(ref)

    def test_exactly_zero_rate_flows_never_complete(self):
        # A zero-capacity pod link pins inter-pod flows at exactly
        # rate 0 — no completion is ever scheduled for them, and both
        # loops must terminate with the same partial outcome.
        def flows():
            return [
                Flow(0, 0, 1, size_bits=64 * KILOBYTE, arrival_time=0.0),
                Flow(1, 0, 4, size_bits=64 * KILOBYTE, arrival_time=0.0),
            ]
        inc, ref = _run_pair(
            flows, n_nodes=8, node_bandwidth_bps=BANDWIDTH,
            pod_map=pod_map_for(8, 4),
            pod_bandwidth_bps=0.0,
        )
        assert _fingerprint(inc) == _fingerprint(ref)
        assert [f.flow_id for f in inc.completed_flows] == [0]

    def test_empty_flow_list(self):
        inc, ref = _run_pair(lambda: [], n_nodes=4,
                             node_bandwidth_bps=BANDWIDTH)
        assert _fingerprint(inc) == _fingerprint(ref)
        assert inc.events == 0


class TestLevelFillingOracle:
    """Both loops' allocator vs verbatim progressive filling."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_fill_levels_matches_maxmin_rates(self, seed):
        rng = random.Random(seed)
        net = FluidNetwork(
            16, BANDWIDTH,
            pod_map=pod_map_for(16, 4),
            pod_bandwidth_bps=4 * BANDWIDTH / 3.0,
        )
        active = {}
        for fid in range(rng.randint(5, 60)):
            src = rng.randrange(16)
            dst = (src + rng.randrange(1, 16)) % 16
            active[fid] = net._flow_resources(
                Flow(fid, src, dst, size_bits=KILOBYTE,
                     arrival_time=0.0)
            )
        oracle = net.maxmin_rates(active)
        levels = net._fill_levels(active)
        assert set(levels) == set(oracle)
        for fid, rate in oracle.items():
            assert levels[fid] == pytest.approx(rate, rel=1e-6)

    def test_oracle_feasibility_of_levels(self):
        # Level allocations never oversubscribe any resource.
        net = FluidNetwork(8, BANDWIDTH)
        active = {
            fid: net._flow_resources(Flow(fid, fid % 3, 3 + fid % 4,
                                          size_bits=KILOBYTE,
                                          arrival_time=0.0))
            for fid in range(20)
        }
        rates = net._fill_levels(active)
        usage = {}
        for fid, resources in active.items():
            for res in resources:
                usage[res] = usage.get(res, 0.0) + rates[fid]
        for res, used in usage.items():
            assert used <= net._capacity(res) * (1 + 1e-9)


class TestCompletionTieBreak:
    """Regression for the single-pass completion scan (satellite fix:
    the old fast path evaluated its ``min`` key twice per winner)."""

    def test_first_arrived_wins_exact_tie(self):
        # Two identical flows on disjoint resources complete at the
        # bit-identical instant; both backends must complete the
        # earlier-arrived one first (observable through the event
        # trace ordering being deterministic and fingerprint-equal).
        def flows():
            return [
                Flow(0, 0, 1, size_bits=64 * KILOBYTE, arrival_time=0.0),
                Flow(1, 2, 3, size_bits=64 * KILOBYTE, arrival_time=0.0),
            ]
        inc, ref = _run_pair(flows, n_nodes=4,
                             node_bandwidth_bps=BANDWIDTH)
        assert _fingerprint(inc) == _fingerprint(ref)
        for result in (inc, ref):
            assert all(f.is_complete for f in result.flows)

    def test_arrival_beats_simultaneous_completion(self):
        # An arrival at exactly a completion instant: arrivals win in
        # both loops (`<=` vs the completion head).
        def flows():
            return [
                Flow(0, 0, 1, size_bits=BANDWIDTH * 1e-3,
                     arrival_time=0.0),
                Flow(1, 2, 3, size_bits=64 * KILOBYTE,
                     arrival_time=1e-3),
            ]
        inc, ref = _run_pair(flows, n_nodes=4,
                             node_bandwidth_bps=BANDWIDTH)
        assert _fingerprint(inc) == _fingerprint(ref)


class TestCallerFlowsUsableAfterRun:
    """``run`` mutates caller Flow objects as documented — and only
    as documented."""

    def test_flows_are_stamped_and_reusable(self):
        flows = _workload(8, 40, seed=3)
        net = FluidNetwork(8, BANDWIDTH)
        result = net.run(flows)
        assert result.flows is not flows or result.flows == flows
        for flow in flows:
            if flow.is_complete:
                # The documented fluid-model convention: one
                # indivisible unit of delivery.
                assert flow.n_cells == 1
                assert flow.delivered_cells == 1
                assert flow.completion_time is not None
                assert flow.fct >= 0.0
        # The objects stay usable: FCT stats read them in place...
        assert result.fct_percentile(50) is not None
        # ...and a later cell-level run may re-segment them.
        flow = next(f for f in flows if f.is_complete)
        assert flow.segment(8 * KILOBYTE) >= 1

    def test_rerun_on_fresh_copies_reproduces(self):
        flows = _workload(8, 40, seed=3)
        net = FluidNetwork(8, BANDWIDTH)
        first = net.run(flows)
        copies = [Flow(f.flow_id, f.src, f.dst, size_bits=f.size_bits,
                       arrival_time=f.arrival_time) for f in flows]
        second = net.run(copies)
        assert _fingerprint(first) == _fingerprint(second)
