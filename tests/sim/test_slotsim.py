"""Slot-level simulator: validation of the epoch abstraction."""

import pytest

from repro.core import CongestionConfig, Flow, SiriusNetwork
from repro.sim.slotsim import SlotLevelSirius
from repro.workload import FlowWorkload, WorkloadConfig
from repro.units import KILOBYTE, MEGABYTE


def workload(n_nodes, load, n_flows, seed=3):
    reference = SiriusNetwork(
        n_nodes, 4, uplink_multiplier=1.0
    ).reference_node_bandwidth_bps
    return FlowWorkload(WorkloadConfig(
        n_nodes=n_nodes, load=load, node_bandwidth_bps=reference,
        mean_flow_bits=40 * KILOBYTE, truncation_bits=1 * MEGABYTE,
        seed=seed,
    ))


class TestEquivalence:
    """The epoch abstraction must agree with slot-level physics."""

    def _run_both(self, load=0.4, n_flows=250, seed=1):
        n = 16
        flows_a = workload(n, load, n_flows).generate(n_flows)
        flows_b = [Flow(f.flow_id, f.src, f.dst, f.size_bits,
                        f.arrival_time) for f in flows_a]
        epoch_sim = SiriusNetwork(n, 4, uplink_multiplier=1.0, seed=seed)
        slot_sim = SlotLevelSirius(n, 4, uplink_multiplier=1.0, seed=seed)
        return (epoch_sim.run(flows_a, check_invariants=True),
                slot_sim.run(flows_b, check_invariants=True))

    def test_both_deliver_everything(self):
        epoch_result, slot_result = self._run_both()
        assert epoch_result.completion_fraction == 1.0
        assert slot_result.completion_fraction == 1.0
        assert slot_result.delivered_bits == pytest.approx(
            epoch_result.delivered_bits
        )

    def test_durations_within_tolerance(self):
        epoch_result, slot_result = self._run_both()
        # Same protocol cadence; the slot sim can only be faster (intra-
        # epoch forwarding) and never slower by more than ~1 epoch of
        # rounding.
        assert slot_result.duration_s <= epoch_result.duration_s * 1.1

    def test_queue_bound_holds_at_slot_granularity(self):
        _epoch_result, slot_result = self._run_both(load=0.8)
        q = slot_result.config.queue_threshold
        assert slot_result.peak_fwd_cells <= q * slot_result.n_nodes

    def test_fct_resolution_is_sub_epoch(self):
        n = 8
        slot_sim = SlotLevelSirius(n, 4, uplink_multiplier=1.0, seed=2)
        flows = [Flow(0, 0, 5, size_bits=4000, arrival_time=0.0)]
        result = slot_sim.run(flows)
        fct = result.completed_flows[0].fct
        epoch = slot_sim.schedule.epoch_duration_s
        slot = slot_sim.timing.slot_duration_s
        # The FCT is not an integer number of epochs (slot resolution).
        assert fct % epoch > slot / 10 or fct % epoch < epoch - slot / 10
        assert fct < 6 * epoch


class TestSlotPhysics:
    def test_slot_connectivity_is_contention_free(self):
        sim = SlotLevelSirius(16, 4, uplink_multiplier=1.0)
        for slot_pairs in sim._slot_pairs:
            destinations = [dst for _src, dst in slot_pairs]
            # Each (node, downlink) receives at most one transmission;
            # with multiplier 1 every destination appears at most once
            # per source block, i.e. counts bounded by blocks.
            for dst in set(destinations):
                assert destinations.count(dst) <= sim.topology.n_blocks

    def test_every_pair_connected_once_per_epoch(self):
        sim = SlotLevelSirius(8, 4, uplink_multiplier=1.0)
        counts = {}
        for slot_pairs in sim._slot_pairs:
            for src, dst in slot_pairs:
                counts[(src, dst)] = counts.get((src, dst), 0) + 1
        for src in range(8):
            for dst in range(8):
                if src != dst:
                    assert counts[(src, dst)] == 1

    def test_fractional_multiplier_rejected(self):
        with pytest.raises(ValueError):
            SlotLevelSirius(8, 4, uplink_multiplier=1.5)

    def test_ideal_mode_works_at_slot_level(self):
        n = 8
        sim = SlotLevelSirius(n, 4, uplink_multiplier=1.0, seed=4,
                              config=CongestionConfig(ideal=True))
        flows = workload(n, 0.3, 80).generate(80)
        result = sim.run(flows)
        assert result.completion_fraction == 1.0
