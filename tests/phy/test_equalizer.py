"""LMS equalization and tap caching (paper §6)."""

import numpy as np
import pytest

from repro.phy.equalizer import LMSEqualizer, TapCache
from repro.phy.pam4 import (
    PAM4Channel,
    bits_to_symbols,
    measure_ber,
    random_bits,
    symbols_to_bits,
)

ISI = (1.0, 0.45, 0.2)


def burst(seed, n_bits=8_000, snr_db=26.0, channel_seed=4):
    bits = random_bits(n_bits, seed=seed)
    symbols = bits_to_symbols(bits)
    channel = PAM4Channel(snr_db=snr_db, impulse_response=ISI,
                          seed=channel_seed)
    return bits, symbols, channel.transmit(symbols)


class TestLMS:
    def test_equalizer_opens_the_eye(self):
        bits, symbols, received = burst(seed=1)
        raw_ber = measure_ber(bits, symbols_to_bits(received))
        eq = LMSEqualizer(n_taps=9)
        eq.train(received, symbols)
        eq_ber = measure_ber(bits, symbols_to_bits(eq.equalize(received)))
        assert raw_ber > 0.05
        assert eq_ber < raw_ber / 50

    def test_training_reduces_mse(self):
        _bits, symbols, received = burst(seed=2)
        eq = LMSEqualizer(n_taps=9)
        before = eq.output_mse(received, symbols)
        eq.train(received, symbols)
        after = eq.output_mse(received, symbols)
        assert after < before / 5

    def test_training_reports_convergence_length(self):
        _bits, symbols, received = burst(seed=3)
        eq = LMSEqualizer(n_taps=9)
        used = eq.train(received, symbols, target_mse=0.05)
        assert 16 <= used < len(symbols)

    def test_decision_directed_tracking(self):
        bits, symbols, received = burst(seed=4)
        eq = LMSEqualizer(n_taps=9)
        eq.train(received[:2000], symbols[:2000])
        out = eq.decision_directed(received[2000:])
        ber = measure_ber(bits[4000:], symbols_to_bits(out))
        assert ber < 0.01

    def test_identity_on_clean_channel(self):
        _bits, symbols, _ = burst(seed=5)
        eq = LMSEqualizer(n_taps=5)
        # Centre-spike initialisation passes a clean signal unchanged.
        assert np.allclose(eq.equalize(symbols), symbols)

    def test_validation(self):
        with pytest.raises(ValueError):
            LMSEqualizer(n_taps=0)
        with pytest.raises(ValueError):
            LMSEqualizer(step=2.0)
        with pytest.raises(ValueError):
            LMSEqualizer(n_taps=3, taps=np.zeros(5))
        eq = LMSEqualizer(n_taps=5)
        with pytest.raises(ValueError):
            eq.train(np.zeros(10), np.zeros(9))


class TestTapCache:
    def test_warm_start_trains_faster(self):
        cache = TapCache(n_taps=9)
        lengths = []
        for visit in range(5):
            _bits, symbols, received = burst(seed=10 + visit)
            lengths.append(cache.train_burst(3, received, symbols))
        # First visit is the cold outlier; subsequent warm starts are
        # much shorter (the §6 fast-equalization property).
        assert lengths[0] > 1.5 * max(lengths[1:])
        assert cache.stats.speedup > 1.5
        assert cache.stats.cold_trainings == 1
        assert cache.stats.warm_trainings == 4

    def test_per_sender_caches(self):
        cache = TapCache(n_taps=9)
        _b, symbols, received = burst(seed=20)
        cache.train_burst(1, received, symbols)
        assert cache.known_senders() == 1
        _b, symbols2, received2 = burst(seed=21)
        cache.train_burst(2, received2, symbols2)
        assert cache.known_senders() == 2
        assert cache.stats.cold_trainings == 2

    def test_invalidate_forces_cold_training(self):
        cache = TapCache(n_taps=9)
        _b, symbols, received = burst(seed=22)
        cache.train_burst(1, received, symbols)
        cache.invalidate(1)
        _b, symbols2, received2 = burst(seed=23)
        cache.train_burst(1, received2, symbols2)
        assert cache.stats.cold_trainings == 2

    def test_empty_stats(self):
        cache = TapCache()
        assert cache.stats.mean_cold_symbols == 0.0
        assert cache.stats.speedup == float("inf") or (
            cache.stats.mean_cold_symbols == 0.0
        )
