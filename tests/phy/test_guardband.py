"""Guardband budget (paper §4.5, §6, Fig 8c)."""

import pytest

from repro.phy import GuardbandBudget
from repro.phy.guardband import RECONFIGURATION_TARGET_S
from repro.units import NANOSECOND


class TestSiriusV2Budget:
    def test_total_is_3_84ns(self):
        assert GuardbandBudget().total_s == pytest.approx(3.84 * NANOSECOND)

    def test_meets_10ns_target(self):
        assert GuardbandBudget().meets_target
        assert RECONFIGURATION_TARGET_S == pytest.approx(10 * NANOSECOND)

    def test_laser_component_is_912ps(self):
        assert GuardbandBudget().laser_tuning_s == pytest.approx(912e-12)

    def test_min_slot_is_38_4ns(self):
        # §4.5: "allowing for a slot as low as 38 ns".
        assert GuardbandBudget().min_slot_s() == pytest.approx(
            38.4 * NANOSECOND
        )


class TestSiriusV1Budget:
    def test_total_is_100ns(self):
        assert GuardbandBudget.sirius_v1().total_s == pytest.approx(
            100 * NANOSECOND
        )

    def test_v1_misses_the_target(self):
        assert not GuardbandBudget.sirius_v1().meets_target


class TestValidation:
    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            GuardbandBudget(laser_tuning_s=-1.0)

    def test_min_slot_fraction_bounds(self):
        with pytest.raises(ValueError):
            GuardbandBudget().min_slot_s(guard_fraction=0.0)


class TestBurstWaveform:
    def test_waveform_shape(self):
        budget = GuardbandBudget()
        wave = budget.burst_waveform(slot_duration_s=38.4 * NANOSECOND,
                                     n_slots=3)
        assert len(wave["times_s"]) == len(wave["intensity"]) == 600
        assert wave["guardband_s"] == pytest.approx(budget.total_s)
        # Plateau near 1 mid-slot, dip near 0 in the guardband.
        assert max(wave["intensity"]) > 0.95
        assert min(wave["intensity"]) < 0.1

    def test_guardband_dips_repeat_per_slot(self):
        budget = GuardbandBudget()
        slot = 38.4 * NANOSECOND
        wave = budget.burst_waveform(slot_duration_s=slot, n_slots=3,
                                     samples_per_slot=400)
        dips = [
            t for t, level in zip(wave["times_s"], wave["intensity"])
            if level < 0.1
        ]
        assert dips, "no guardband dip found"
        # Dips clustered around the end of each slot.
        assert any(t < slot for t in dips)
        assert any(slot < t < 2 * slot for t in dips)

    def test_slot_must_exceed_guardband(self):
        with pytest.raises(ValueError):
            GuardbandBudget().burst_waveform(slot_duration_s=1 * NANOSECOND)

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            GuardbandBudget().burst_waveform(100e-9, n_slots=0)
