"""Phase-caching CDR and amplitude caching (paper §4.5, §A.1)."""

import random

import pytest

from repro.phy import PhaseCachingCDR
from repro.phy.cdr import (
    AmplitudeCache,
    CACHED_LOCK_TIME,
    COLD_ACQUISITION_TIME,
    SYMBOL_TIME_25GBAUD,
)
from repro.units import MICROSECOND, NANOSECOND


class TestPhaseCaching:
    def test_first_contact_is_cold(self):
        cdr = PhaseCachingCDR(rng=random.Random(1))
        assert cdr.lock(sender=3, now=0.0) == COLD_ACQUISITION_TIME
        assert cdr.cold_acquisitions == 1

    def test_revisit_within_epoch_is_subnanosecond(self):
        cdr = PhaseCachingCDR(rng=random.Random(1))
        cdr.lock(3, now=0.0)
        latency = cdr.lock(3, now=1.6 * MICROSECOND)
        assert latency == CACHED_LOCK_TIME
        assert latency < 1 * NANOSECOND

    def test_stale_cache_forces_cold_acquisition(self):
        cdr = PhaseCachingCDR(max_cache_age_s=100 * MICROSECOND,
                              rng=random.Random(1))
        cdr.lock(3, now=0.0)
        assert cdr.lock(3, now=1.0) == COLD_ACQUISITION_TIME

    def test_excess_drift_forces_cold_acquisition(self):
        cdr = PhaseCachingCDR(drift_ppm=1000.0, max_cache_age_s=1.0,
                              rng=random.Random(1))
        cdr.lock(3, now=0.0)
        # 1000 ppm x 1 ms >> quarter symbol.
        assert cdr.lock(3, now=1e-3) == COLD_ACQUISITION_TIME

    def test_per_sender_caches_are_independent(self):
        cdr = PhaseCachingCDR(rng=random.Random(1))
        cdr.lock(1, now=0.0)
        assert cdr.lock(2, now=1e-6) == COLD_ACQUISITION_TIME
        assert cdr.cache_size == 2

    def test_invalidate_drops_entry(self):
        cdr = PhaseCachingCDR(rng=random.Random(1))
        cdr.lock(1, now=0.0)
        cdr.invalidate(1)
        assert cdr.lock(1, now=1e-6) == COLD_ACQUISITION_TIME

    def test_cyclic_schedule_enables_caching(self):
        # The key design property: the max revisit interval compatible
        # with cached locking far exceeds a realistic epoch.
        cdr = PhaseCachingCDR(drift_ppm=0.01)
        assert cdr.max_epoch_for_cached_lock() > 100 * MICROSECOND

    def test_residual_drift_linear_in_age(self):
        cdr = PhaseCachingCDR(drift_ppm=1.0)
        assert cdr.residual_drift(2.0) == pytest.approx(
            2 * cdr.residual_drift(1.0)
        )
        with pytest.raises(ValueError):
            cdr.residual_drift(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseCachingCDR(symbol_time_s=0.0)
        with pytest.raises(ValueError):
            PhaseCachingCDR(lock_fraction=1.5)

    def test_symbol_time_constant(self):
        # 25 GBaud -> 40 ps symbols (§6).
        assert SYMBOL_TIME_25GBAUD == pytest.approx(40e-12)


class TestAmplitudeCache:
    def test_unknown_sender_gets_nominal_gain(self):
        cache = AmplitudeCache(nominal_gain=2.0)
        assert cache.gain_for(7) == 2.0

    def test_update_then_reuse(self):
        cache = AmplitudeCache()
        gain = cache.update(7, received_power_mw=0.5, target_power_mw=1.0)
        assert gain == pytest.approx(2.0)
        assert cache.gain_for(7) == pytest.approx(2.0)
        assert cache.known_senders() == 1

    def test_different_senders_different_gains(self):
        cache = AmplitudeCache()
        cache.update(1, 0.5, 1.0)
        cache.update(2, 0.25, 1.0)
        assert cache.gain_for(1) != cache.gain_for(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            AmplitudeCache().update(1, 0.0, 1.0)
