"""PAM-4 modulation and channel model (paper §6)."""

import numpy as np
import pytest

from repro.phy.pam4 import (
    LEVELS,
    PAM4Channel,
    bits_to_symbols,
    measure_ber,
    random_bits,
    slice_to_indices,
    symbols_to_bits,
    theoretical_awgn_ber,
)


class TestMapping:
    def test_roundtrip(self):
        bits = random_bits(1000, seed=1)
        assert np.array_equal(symbols_to_bits(bits_to_symbols(bits)), bits)

    def test_levels(self):
        symbols = bits_to_symbols([0, 0, 0, 1, 1, 1, 1, 0])
        assert list(symbols) == [-3.0, -1.0, 1.0, 3.0]

    def test_gray_adjacent_levels_differ_in_one_bit(self):
        # The whole point of Gray coding: a one-level slicer error
        # flips exactly one bit.
        maps = {}
        for msb in (0, 1):
            for lsb in (0, 1):
                level = bits_to_symbols([msb, lsb])[0]
                maps[level] = (msb, lsb)
        ordered = sorted(maps)
        for a, b in zip(ordered, ordered[1:]):
            diff = sum(x != y for x, y in zip(maps[a], maps[b]))
            assert diff == 1

    def test_slicer_thresholds(self):
        samples = np.array([-5.0, -2.5, -0.5, 0.5, 2.5, 9.0])
        assert list(slice_to_indices(samples)) == [0, 0, 1, 2, 3, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            bits_to_symbols([0, 1, 1])  # odd length
        with pytest.raises(ValueError):
            bits_to_symbols([0, 2])
        with pytest.raises(ValueError):
            random_bits(3)


class TestChannel:
    def test_noiseless_isi_free_channel_is_transparent(self):
        channel = PAM4Channel(snr_db=200.0, seed=1)
        symbols = bits_to_symbols(random_bits(200, seed=2))
        received = channel.transmit(symbols)
        assert np.allclose(received, symbols, atol=1e-6)

    def test_awgn_ber_matches_theory(self):
        # SNR chosen so ~1500 errors land in the sample: tight stats.
        bits = random_bits(400_000, seed=3)
        channel = PAM4Channel(snr_db=15.0, seed=4)
        received = channel.transmit(bits_to_symbols(bits))
        measured = measure_ber(bits, symbols_to_bits(received))
        assert measured == pytest.approx(theoretical_awgn_ber(15.0),
                                         rel=0.15)

    def test_ber_decreases_with_snr(self):
        bers = []
        for snr in (14.0, 17.0, 20.0):
            bits = random_bits(100_000, seed=5)
            channel = PAM4Channel(snr_db=snr, seed=6)
            received = channel.transmit(bits_to_symbols(bits))
            bers.append(measure_ber(bits, symbols_to_bits(received)))
        assert bers[0] > bers[1] > bers[2]

    def test_isi_degrades_the_eye(self):
        bits = random_bits(20_000, seed=7)
        symbols = bits_to_symbols(bits)
        clean = PAM4Channel(snr_db=26.0, seed=8)
        dispersive = PAM4Channel(snr_db=26.0,
                                 impulse_response=(1.0, 0.45, 0.2), seed=8)
        ber_clean = measure_ber(bits, symbols_to_bits(clean.transmit(symbols)))
        ber_isi = measure_ber(
            bits, symbols_to_bits(dispersive.transmit(symbols))
        )
        assert ber_isi > 100 * max(ber_clean, 1e-9)

    def test_noise_sigma_formula(self):
        channel = PAM4Channel(snr_db=10.0)
        assert channel.noise_sigma == pytest.approx(np.sqrt(0.5))

    def test_validation(self):
        with pytest.raises(ValueError):
            PAM4Channel(impulse_response=())
        with pytest.raises(ValueError):
            PAM4Channel(impulse_response=(0.0, 1.0))
        with pytest.raises(ValueError):
            measure_ber([0, 1], [0])
        with pytest.raises(ValueError):
            measure_ber([], [])


class TestTheory:
    def test_mean_symbol_power_is_five(self):
        assert float(np.mean(LEVELS ** 2)) == 5.0

    def test_theory_monotone(self):
        assert theoretical_awgn_ber(15) > theoretical_awgn_ber(20)
