"""The composed burst-mode receive pipeline (§6, §A.1)."""

import numpy as np
import pytest

from repro.phy.burst_receiver import (
    BurstReceiver,
    BurstTransmitter,
    make_preamble,
)
from repro.phy.pam4 import PAM4Channel, random_bits

ISI = (1.0, 0.35, 0.12)


def make_link(seed=3, snr_db=26.0, amplitude=1.0):
    channel = PAM4Channel(snr_db=snr_db, impulse_response=ISI, seed=seed)
    return BurstTransmitter(channel, amplitude=amplitude)


class TestPipeline:
    def test_first_burst_cold_then_cached(self):
        rx = BurstReceiver()
        tx = make_link()
        bits = random_bits(1000, seed=1)
        first = rx.receive(7, tx.transmit(bits), bits, now=0.0)
        assert not first.cached_lock
        bits2 = random_bits(1000, seed=2)
        second = rx.receive(7, tx.transmit(bits2), bits2, now=1.6e-6)
        assert second.cached_lock
        assert second.lock_latency_s < 1e-9

    def test_payload_error_free_over_dispersive_channel(self):
        rx = BurstReceiver()
        tx = make_link()
        for visit in range(4):
            bits = random_bits(2000, seed=10 + visit)
            report = rx.receive(1, tx.transmit(bits), bits,
                                now=visit * 1.6e-6)
        assert report.payload_ber == 0.0
        assert rx.worst_ber(1) < 1e-3

    def test_training_shrinks_with_cache(self):
        rx = BurstReceiver()
        tx = make_link()
        lengths = []
        for visit in range(4):
            bits = random_bits(1500, seed=20 + visit)
            lengths.append(rx.receive(2, tx.transmit(bits), bits,
                                      now=visit * 1.6e-6).training_symbols)
        assert lengths[0] > max(lengths[1:])

    def test_amplitude_cache_normalizes_per_sender_power(self):
        rx = BurstReceiver()
        quiet = make_link(seed=4, amplitude=0.5)
        loud = make_link(seed=5, amplitude=1.4)
        for visit in range(3):
            bits = random_bits(2000, seed=30 + visit)
            report_q = rx.receive(3, quiet.transmit(bits), bits,
                                  now=visit * 1.6e-6)
            bits = random_bits(2000, seed=40 + visit)
            report_l = rx.receive(4, loud.transmit(bits), bits,
                                  now=visit * 1.6e-6 + 1e-7)
        # Cached gains diverge to match the senders' power spread...
        assert report_q.gain_applied > report_l.gain_applied
        # ...and both end up error-free.
        assert report_q.payload_ber == 0.0
        assert report_l.payload_ber == 0.0

    def test_invalidate_forces_cold_reacquisition(self):
        rx = BurstReceiver()
        tx = make_link()
        bits = random_bits(1000, seed=50)
        rx.receive(5, tx.transmit(bits), bits, now=0.0)
        rx.invalidate(5)
        bits = random_bits(1000, seed=51)
        report = rx.receive(5, tx.transmit(bits), bits, now=1.6e-6)
        assert not report.cached_lock

    def test_burst_must_exceed_preamble(self):
        rx = BurstReceiver()
        with pytest.raises(ValueError):
            rx.receive(0, np.zeros(10), np.zeros(4, dtype=int), now=0.0)

    def test_worst_ber_empty(self):
        assert BurstReceiver().worst_ber() == 0.0


class TestComponents:
    def test_preamble_validation(self):
        with pytest.raises(ValueError):
            make_preamble(4)

    def test_preamble_uses_all_levels(self):
        preamble = make_preamble(64)
        assert len(set(preamble.tolist())) == 4

    def test_transmitter_validation(self):
        with pytest.raises(ValueError):
            BurstTransmitter(PAM4Channel(), amplitude=0.0)


class TestSignalLevelRig:
    def test_signal_rig_matches_model_rig_conclusions(self):
        from repro.testbed import PrototypeRig

        report = PrototypeRig("v2", signal_level=True, bits_per_burst=400,
                              seed=5).run(n_epochs=6, sync_epochs=500)
        assert report.guardband_sufficient
        assert report.error_free
        assert report.bits_checked > 10_000

    def test_signal_rig_odd_bits_rejected(self):
        from repro.testbed import PrototypeRig

        with pytest.raises(ValueError):
            PrototypeRig("v2", signal_level=True, bits_per_burst=401)
