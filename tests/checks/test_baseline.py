"""Baseline persistence and diffing semantics."""

import json
import textwrap

import pytest

from repro.checks import (
    check_source,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.checks.registry import ALL_RULES

BAD = textwrap.dedent("""\
def to_us(duration_s):
    return duration_s / 1e-6
""")


def findings_for(source):
    return check_source(source, ALL_RULES)


class TestRoundtrip:
    def test_write_then_load(self, tmp_path):
        findings = findings_for(BAD)
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        baseline = load_baseline(path)
        assert baseline == {findings[0].fingerprint: 1}

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(["not", "a", "baseline"]))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_duplicate_fingerprints_counted(self, tmp_path):
        # The same violation pattern twice -> count 2.
        source = BAD + BAD.replace("to_us", "to_us_again")
        findings = findings_for(source)
        assert len(findings) == 2
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        baseline = load_baseline(path)
        assert sum(baseline.values()) == 2


class TestDiff:
    def test_baselined_findings_are_not_new(self):
        findings = findings_for(BAD)
        baseline = {findings[0].fingerprint: 1}
        new, stale = diff_against_baseline(findings, baseline)
        assert new == [] and stale == []

    def test_fresh_finding_is_new(self):
        findings = findings_for(BAD)
        new, stale = diff_against_baseline(findings, {})
        assert new == findings and stale == []

    def test_line_shift_does_not_break_baseline(self):
        baseline_findings = findings_for(BAD)
        shifted = findings_for("import math\n\n" + BAD)
        assert shifted[0].line != baseline_findings[0].line
        new, stale = diff_against_baseline(
            shifted, {baseline_findings[0].fingerprint: 1}
        )
        assert new == [] and stale == []

    def test_second_identical_violation_is_new(self):
        source = BAD + BAD
        findings = findings_for(source)
        baseline = {findings[0].fingerprint: 1}
        new, _stale = diff_against_baseline(findings, baseline)
        assert len(new) == 1

    def test_fixed_finding_reported_stale(self):
        findings = findings_for(BAD)
        baseline = {findings[0].fingerprint: 1, "gone::U101::x / 1e-9": 1}
        new, stale = diff_against_baseline(findings, baseline)
        assert new == []
        assert stale == ["gone::U101::x / 1e-9"]


class TestDeterministicWrites:
    def _findings(self):
        from repro.checks.engine import Finding

        return [
            Finding(rule="U101", name="unit-literal", path="src/b.py",
                    line=9, col=4, message="m", snippet="x / 1e-6"),
            Finding(rule="T701", name="nondet-reaches-run", path="src/a.py",
                    line=3, col=0, message="m", snippet="time.time()"),
            Finding(rule="F601", name="flow-dimension-mismatch",
                    path="src/a.py", line=7, col=2, message="m",
                    snippet="a_s + b_bits"),
        ]

    def test_byte_identical_regardless_of_finding_order(self, tmp_path):
        findings = self._findings()
        forward = tmp_path / "forward.json"
        backward = tmp_path / "backward.json"
        write_baseline(forward, findings)
        write_baseline(backward, list(reversed(findings)))
        assert forward.read_bytes() == backward.read_bytes()

    def test_fingerprints_sorted_by_path_then_rule(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, self._findings())
        keys = list(json.loads(path.read_text())["fingerprints"])
        assert keys[0].startswith("src/a.py::F601")
        assert keys[1].startswith("src/a.py::T701")
        assert keys[2].startswith("src/b.py::U101")

    def test_same_path_and_rule_orders_by_line_not_snippet(self, tmp_path):
        from repro.checks.engine import Finding

        findings = [
            Finding(rule="U101", name="unit-literal", path="src/a.py",
                    line=40, col=0, message="m", snippet="aa / 1e-6"),
            Finding(rule="U101", name="unit-literal", path="src/a.py",
                    line=2, col=0, message="m", snippet="zz / 1e-6"),
        ]
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        keys = list(json.loads(path.read_text())["fingerprints"])
        # Line 2 ('zz') precedes line 40 ('aa'): the file diffs in
        # source order, not snippet-alphabetical order.
        assert keys == ["src/a.py::U101::zz / 1e-6",
                        "src/a.py::U101::aa / 1e-6"]

    def test_rewrite_of_unchanged_tree_is_a_no_op(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, self._findings())
        first = path.read_bytes()
        write_baseline(path, self._findings())
        assert path.read_bytes() == first

    def test_round_trip_load_preserves_order_and_diffs_clean(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        baseline = load_baseline(path)
        on_disk = list(json.loads(path.read_text())["fingerprints"])
        assert list(baseline) == on_disk
        new, stale = diff_against_baseline(findings, baseline)
        assert new == [] and stale == []
