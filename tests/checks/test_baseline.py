"""Baseline persistence and diffing semantics."""

import json
import textwrap

import pytest

from repro.checks import (
    check_source,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.checks.registry import ALL_RULES

BAD = textwrap.dedent("""\
def to_us(duration_s):
    return duration_s / 1e-6
""")


def findings_for(source):
    return check_source(source, ALL_RULES)


class TestRoundtrip:
    def test_write_then_load(self, tmp_path):
        findings = findings_for(BAD)
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        baseline = load_baseline(path)
        assert baseline == {findings[0].fingerprint: 1}

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(["not", "a", "baseline"]))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_duplicate_fingerprints_counted(self, tmp_path):
        # The same violation pattern twice -> count 2.
        source = BAD + BAD.replace("to_us", "to_us_again")
        findings = findings_for(source)
        assert len(findings) == 2
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        baseline = load_baseline(path)
        assert sum(baseline.values()) == 2


class TestDiff:
    def test_baselined_findings_are_not_new(self):
        findings = findings_for(BAD)
        baseline = {findings[0].fingerprint: 1}
        new, stale = diff_against_baseline(findings, baseline)
        assert new == [] and stale == []

    def test_fresh_finding_is_new(self):
        findings = findings_for(BAD)
        new, stale = diff_against_baseline(findings, {})
        assert new == findings and stale == []

    def test_line_shift_does_not_break_baseline(self):
        baseline_findings = findings_for(BAD)
        shifted = findings_for("import math\n\n" + BAD)
        assert shifted[0].line != baseline_findings[0].line
        new, stale = diff_against_baseline(
            shifted, {baseline_findings[0].fingerprint: 1}
        )
        assert new == [] and stale == []

    def test_second_identical_violation_is_new(self):
        source = BAD + BAD
        findings = findings_for(source)
        baseline = {findings[0].fingerprint: 1}
        new, _stale = diff_against_baseline(findings, baseline)
        assert len(new) == 1

    def test_fixed_finding_reported_stale(self):
        findings = findings_for(BAD)
        baseline = {findings[0].fingerprint: 1, "gone::U101::x / 1e-9": 1}
        new, stale = diff_against_baseline(findings, baseline)
        assert new == []
        assert stale == ["gone::U101::x / 1e-9"]
