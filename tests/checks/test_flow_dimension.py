"""Fixture tests for the ``F6xx`` dimensional-flow rules.

Each rule gets a buggy fixture it must catch and a clean twin it must
stay silent on — the acceptance contract for the flow analyses.
"""

from repro.checks.engine import check_project_source, check_source
from repro.checks.flow.dimension_rules import DIMENSION_FLOW_RULES


def _codes(findings):
    return [f.rule for f in findings]


class TestF601DimensionMismatch:
    def test_catches_mismatch_through_assignment_and_call(self):
        findings = check_source(
            "from repro.units import NS\n"
            "def detour_delay():\n"
            "    return 5 * NS\n"
            "def total(size_bits):\n"
            "    d = detour_delay()\n"
            "    return size_bits + d\n",
            DIMENSION_FLOW_RULES,
            relpath="src/repro/core/sched.py",
        )
        assert _codes(findings) == ["F601"]
        assert "time" in findings[0].message
        assert "data" in findings[0].message

    def test_clean_twin_same_dimension_is_silent(self):
        findings = check_source(
            "from repro.units import NS\n"
            "def detour_delay():\n"
            "    return 5 * NS\n"
            "def total(guard_s):\n"
            "    d = detour_delay()\n"
            "    return guard_s + d\n",
            DIMENSION_FLOW_RULES,
            relpath="src/repro/core/sched.py",
        )
        assert findings == []

    def test_catches_mismatch_across_files(self):
        findings = check_project_source({
            "src/repro/phy/delays.py": (
                "from repro.units import US\n"
                "def settle_time():\n"
                "    return 3 * US\n"
            ),
            "src/repro/core/plan.py": (
                "from repro.phy.delays import settle_time\n"
                "def budget(window_bits):\n"
                "    return window_bits - settle_time()\n"
            ),
        }, DIMENSION_FLOW_RULES)
        assert _codes(findings) == ["F601"]
        assert findings[0].path == "src/repro/core/plan.py"

    def test_comparison_between_inferred_dimensions_is_flagged(self):
        # The left side's dimension is only known via the assignment —
        # no suffix at the comparison itself, so U103 cannot see it.
        findings = check_source(
            "def check(deadline_s, queue_bits):\n"
            "    limit = deadline_s\n"
            "    return limit < queue_bits\n",
            DIMENSION_FLOW_RULES,
            relpath="src/repro/core/sched.py",
        )
        assert _codes(findings) == ["F601"]

    def test_syntactic_suffix_conflict_left_to_u103(self):
        # Both operands carry explicit suffixes: the per-file U103 rule
        # owns that report, so the flow rule must not double-report.
        findings = check_source(
            "def f(a_s, b_bits):\n"
            "    return a_s + b_bits\n",
            DIMENSION_FLOW_RULES,
            relpath="src/repro/core/sched.py",
        )
        assert findings == []

    def test_rate_times_time_is_data(self):
        findings = check_source(
            "def window(link_bps, epoch_s, budget_bits):\n"
            "    moved = link_bps * epoch_s\n"
            "    return budget_bits - moved\n",
            DIMENSION_FLOW_RULES,
            relpath="src/repro/core/sched.py",
        )
        assert findings == []  # data - data: the algebra must line up


class TestF602DbLinearMix:
    def test_catches_inferred_db_plus_linear(self):
        findings = check_source(
            "from repro.units import dbm_to_w\n"
            "def link_budget(tx_power_dbm):\n"
            "    p = dbm_to_w(tx_power_dbm)\n"
            "    return tx_power_dbm + p\n",
            DIMENSION_FLOW_RULES,
            relpath="src/repro/optics/budget.py",
        )
        assert _codes(findings) == ["F602"]
        assert "dbm_to_w" in findings[0].message

    def test_clean_twin_converts_before_adding(self):
        findings = check_source(
            "from repro.units import dbm_to_w\n"
            "def link_budget(tx_power_dbm, amp_w):\n"
            "    p = dbm_to_w(tx_power_dbm)\n"
            "    return amp_w + p\n",
            DIMENSION_FLOW_RULES,
            relpath="src/repro/optics/budget.py",
        )
        assert findings == []


class TestF603CallDimensionMismatch:
    def test_catches_wrong_dimension_argument(self):
        findings = check_project_source({
            "src/repro/phy/fibre.py": (
                "def propagation(length_m):\n"
                "    return length_m / 2e8\n"
            ),
            "src/repro/core/plan.py": (
                "from repro.phy.fibre import propagation\n"
                "def plan(duration_s):\n"
                "    return propagation(duration_s)\n"
            ),
        }, DIMENSION_FLOW_RULES)
        assert "F603" in _codes(findings)
        f603 = next(f for f in findings if f.rule == "F603")
        assert f603.path == "src/repro/core/plan.py"
        assert "length" in f603.message

    def test_keyword_argument_binding(self):
        findings = check_source(
            "def span(length_m=0.0):\n"
            "    return length_m\n"
            "def plan(duration_s):\n"
            "    return span(length_m=duration_s)\n",
            DIMENSION_FLOW_RULES,
            relpath="src/repro/core/plan.py",
        )
        assert "F603" in _codes(findings)

    def test_clean_twin_correct_dimension_is_silent(self):
        findings = check_project_source({
            "src/repro/phy/fibre.py": (
                "def propagation(length_m):\n"
                "    return length_m / 2e8\n"
            ),
            "src/repro/core/plan.py": (
                "from repro.phy.fibre import propagation\n"
                "def plan(span_m):\n"
                "    return propagation(span_m)\n"
            ),
        }, DIMENSION_FLOW_RULES)
        assert "F603" not in _codes(findings)


class TestSuppression:
    def test_flow_finding_suppressed_at_anchor_line(self):
        findings = check_source(
            "def check(deadline_s, queue_bits):\n"
            "    return deadline_s < queue_bits  # lint: ignore[F601]\n",
            DIMENSION_FLOW_RULES,
            relpath="src/repro/core/sched.py",
        )
        assert findings == []
