"""Fixture tests for the observability rule family (O4xx)."""

from repro.checks.engine import check_source
from repro.checks.obs_rules import OBS_RULES

CORE = "src/repro/core/fake.py"
SIM = "src/repro/sim/fake.py"
CLI = "src/repro/cli.py"


def codes(source, relpath):
    return [f.rule for f in check_source(source, OBS_RULES, relpath=relpath)]


class TestPrintInHotPath:
    def test_print_in_core_flagged(self):
        assert codes("print('queue depth', depth)\n", CORE) == ["O401"]

    def test_print_in_sim_flagged(self):
        assert codes("print(x)\n", SIM) == ["O401"]

    def test_print_in_cli_allowed(self):
        assert codes("print('report')\n", CLI) == []

    def test_print_in_obs_report_allowed(self):
        assert codes("print('table')\n", "src/repro/obs/report.py") == []

    def test_print_in_tests_allowed(self):
        assert codes("print(x)\n", "tests/core/test_node.py") == []

    def test_shadowed_name_not_a_builtin_call_still_flagged(self):
        # The rule is syntactic: any bare print(...) call counts.
        source = "def log(print):\n    print('x')\n"
        assert codes(source, CORE) == ["O401"]

    def test_method_named_print_not_flagged(self):
        assert codes("logger.print('x')\n", CORE) == []

    def test_suppression_comment_respected(self):
        source = "print('x')  # lint: ignore[O401]\n"
        assert codes(source, CORE) == []


class TestStreamWriteInHotPath:
    def test_sys_stdout_write_flagged(self):
        source = "import sys\nsys.stdout.write('hot')\n"
        assert codes(source, CORE) == ["O402"]

    def test_sys_stderr_writelines_flagged(self):
        source = "import sys\nsys.stderr.writelines(lines)\n"
        assert codes(source, SIM) == ["O402"]

    def test_file_write_not_flagged(self):
        source = "handle.write(data)\n"
        assert codes(source, CORE) == []

    def test_stream_write_outside_hot_path_allowed(self):
        source = "import sys\nsys.stdout.write('fine')\n"
        assert codes(source, "src/repro/checks/cli.py") == []


class TestScoping:
    def test_prefix_match_is_exact_package_boundary(self):
        # repro.corelib is NOT repro.core.
        assert codes("print(x)\n", "src/repro/corelib/fake.py") == []

    def test_rule_metadata(self):
        by_code = {rule.code: rule for rule in OBS_RULES}
        assert by_code["O401"].name == "print-in-hot-path"
        assert by_code["O402"].name == "stream-write-in-hot-path"
