"""Symbol-table and call-graph tests for ``repro.checks.flow.project``."""

import ast

from repro.checks.engine import parse_file
from repro.checks.flow.project import Project, module_imports


def _ctx(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    ctx = parse_file(path, root=tmp_path)
    assert ctx is not None
    return ctx


def _project(tmp_path, files):
    return Project([_ctx(tmp_path, rel, src) for rel, src in files.items()])


class TestSymbolTable:
    def test_functions_methods_and_nested_defs_get_qualnames(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/thing.py": (
                "def helper():\n"
                "    def inner():\n"
                "        return 1\n"
                "    return inner()\n"
                "class Box:\n"
                "    def get(self):\n"
                "        return helper()\n"
            ),
        })
        assert "repro.core.thing.helper" in project.functions
        assert "repro.core.thing.helper.inner" in project.functions
        assert "repro.core.thing.Box.get" in project.functions
        inner = project.functions["repro.core.thing.helper.inner"]
        assert inner.parent == "repro.core.thing.helper"
        assert project.classes["repro.core.thing.Box"].methods == {
            "get": "repro.core.thing.Box.get"
        }

    def test_method_params_strip_self(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/thing.py": (
                "class Box:\n"
                "    def put(self, item_bits, *, tag):\n"
                "        pass\n"
            ),
        })
        info = project.functions["repro.core.thing.Box.put"]
        assert info.params == ["item_bits"]
        assert info.kwonly == ["tag"]

    def test_conditionally_defined_functions_are_indexed(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/thing.py": (
                "try:\n"
                "    def fast_sum(xs):\n"
                "        return sum(xs)\n"
                "except ImportError:\n"
                "    def fast_sum(xs):\n"
                "        return 0\n"
            ),
        })
        assert "repro.core.thing.fast_sum" in project.functions

    def test_module_imports_resolve_aliases_and_relative(self):
        tree = ast.parse(
            "import numpy as np\n"
            "from repro.units import dbm_to_w as d2w\n"
            "from . import sibling\n"
            "from ..core import rack\n"
        )
        imports = module_imports(tree, "repro.phy.optics")
        assert imports["np"] == "numpy"
        assert imports["d2w"] == "repro.units.dbm_to_w"
        assert imports["sibling"] == "repro.phy.sibling"
        assert imports["rack"] == "repro.core.rack"


class TestCallGraph:
    def test_plain_name_and_imported_calls_resolve(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/units.py": (
                "def dbm_to_w(level_dbm):\n"
                "    return 10 ** ((level_dbm - 30) / 10)\n"
            ),
            "src/repro/phy/amp.py": (
                "from repro.units import dbm_to_w\n"
                "def gain(level_dbm):\n"
                "    return dbm_to_w(level_dbm)\n"
            ),
        })
        edges = dict(
            (callee, site)
            for callee, site in project.calls["repro.phy.amp.gain"]
        )
        assert "repro.units.dbm_to_w" in edges

    def test_self_method_resolves_within_class(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/net.py": (
                "class Net:\n"
                "    def run(self):\n"
                "        return self.step()\n"
                "    def step(self):\n"
                "        return 0\n"
            ),
        })
        callees = [c for c, _ in project.calls["repro.core.net.Net.run"]]
        assert callees == ["repro.core.net.Net.step"]

    def test_obj_method_falls_back_to_cha(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/node.py": (
                "class Node:\n"
                "    def tick(self):\n"
                "        return 1\n"
            ),
            "src/repro/core/net.py": (
                "def drive(node):\n"
                "    return node.tick()\n"
            ),
        })
        callees = [c for c, _ in project.calls["repro.core.net.drive"]]
        assert callees == ["repro.core.node.Node.tick"]

    def test_nested_def_gets_implicit_edge_from_encloser(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/net.py": (
                "def outer():\n"
                "    def closure():\n"
                "        return 1\n"
                "    return 0\n"
            ),
        })
        callees = [c for c, _ in project.calls["repro.core.net.outer"]]
        assert "repro.core.net.outer.closure" in callees

    def test_constructor_call_resolves_to_init(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/net.py": (
                "class Net:\n"
                "    def __init__(self):\n"
                "        self.n = 0\n"
                "def build():\n"
                "    return Net()\n"
            ),
        })
        callees = [c for c, _ in project.calls["repro.core.net.build"]]
        assert callees == ["repro.core.net.Net.__init__"]


class TestReachability:
    def test_reachable_from_follows_transitive_calls(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/net.py": (
                "class Net:\n"
                "    def run(self):\n"
                "        return self.phase()\n"
                "    def phase(self):\n"
                "        return helper()\n"
                "def helper():\n"
                "    return 1\n"
                "def unrelated():\n"
                "    return 2\n"
            ),
        })
        reached = project.reachable_from(["repro.core.net.Net.run"])
        assert "repro.core.net.helper" in reached
        assert "repro.core.net.unrelated" not in reached
        path = project.call_path(reached, "repro.core.net.helper")
        assert path == [
            "repro.core.net.Net.run",
            "repro.core.net.Net.phase",
            "repro.core.net.helper",
        ]


class TestBoundaryEdges:
    FILES = {
        "src/repro/perf/driver.py": (
            "import asyncio\n"
            "import threading\n"
            "from multiprocessing import Pool\n"
            "\n"
            "def worker(job):\n"
            "    return crunch(job)\n"
            "\n"
            "def crunch(job):\n"
            "    return job * 2\n"
            "\n"
            "def sweep(jobs):\n"
            "    with Pool() as pool:\n"
            "        return pool.map(worker, jobs)\n"
            "\n"
            "def side(job):\n"
            "    thread = threading.Thread(target=worker)\n"
            "    thread.start()\n"
            "\n"
            "async def offload(job):\n"
            "    return await asyncio.to_thread(crunch, job)\n"
        ),
    }

    def test_spawn_apis_annotate_edges(self, tmp_path):
        project = _project(tmp_path, self.FILES)
        mod = "repro.perf.driver"
        assert project.edge_boundaries[
            (f"{mod}.sweep", f"{mod}.worker")] == "process"
        assert project.edge_boundaries[
            (f"{mod}.side", f"{mod}.worker")] == "thread"
        assert project.edge_boundaries[
            (f"{mod}.offload", f"{mod}.crunch")] == "thread"

    def test_worker_entries_are_process_targets_only(self, tmp_path):
        project = _project(tmp_path, self.FILES)
        assert project.worker_entries == {"repro.perf.driver.worker"}

    def test_reachability_stops_at_boundaries_on_request(self, tmp_path):
        project = _project(tmp_path, self.FILES)
        mod = "repro.perf.driver"
        followed = project.reachable_from([f"{mod}.sweep"])
        assert f"{mod}.crunch" in followed  # via the worker, by default
        stopped = project.reachable_from([f"{mod}.sweep"],
                                         cross_boundaries=False)
        assert f"{mod}.worker" not in stopped
        assert f"{mod}.crunch" not in stopped

    def test_paths_from_returns_shortest_chains(self, tmp_path):
        project = _project(tmp_path, self.FILES)
        mod = "repro.perf.driver"
        paths = project.paths_from(
            f"{mod}.sweep", lambda info: info.name == "crunch")
        assert paths == [[f"{mod}.sweep", f"{mod}.worker", f"{mod}.crunch"]]
        assert project.paths_from(
            f"{mod}.sweep", lambda info: info.name == "crunch",
            cross_boundaries=False) == []

    def test_nested_def_handed_only_across_boundary(self, tmp_path):
        # A nested function passed to the pool keeps its annotated
        # spawn edge but not an implicit same-context closure edge.
        project = _project(tmp_path, {
            "src/repro/perf/nested.py": (
                "from multiprocessing import Pool\n"
                "\n"
                "def sweep(jobs):\n"
                "    def local(job):\n"
                "        return job\n"
                "    with Pool() as pool:\n"
                "        return pool.map(local, jobs)\n"
            ),
        })
        mod = "repro.perf.nested"
        assert project.edge_boundaries[
            (f"{mod}.sweep", f"{mod}.sweep.local")] == "process"
        stopped = project.reachable_from([f"{mod}.sweep"],
                                         cross_boundaries=False)
        assert f"{mod}.sweep.local" not in stopped
