"""Fixture tests for the performance rule family (P5xx)."""

from repro.checks.engine import check_source
from repro.checks.perf_rules import PERF_RULES

CORE = "src/repro/core/fake.py"
SIM = "src/repro/sim/fake.py"
CLI = "src/repro/cli.py"


def codes(source, relpath):
    return [f.rule for f in check_source(source, PERF_RULES, relpath=relpath)]


class TestPopZeroInLoop:
    def test_pop_zero_in_for_body_flagged(self):
        source = (
            "while pending:\n"
            "    item = queue.pop(0)\n"
        )
        assert codes(source, CORE) == ["P501"]

    def test_pop_zero_in_sim_flagged(self):
        source = (
            "for _ in range(n):\n"
            "    events.pop(0)\n"
        )
        assert codes(source, SIM) == ["P501"]

    def test_pop_zero_outside_loop_allowed(self):
        assert codes("first = queue.pop(0)\n", CORE) == []

    def test_pop_without_index_allowed(self):
        # .pop() from the tail is O(1); only head pops shift the list.
        source = (
            "while stack:\n"
            "    item = stack.pop()\n"
        )
        assert codes(source, CORE) == []

    def test_pop_nonzero_index_allowed(self):
        source = (
            "while items:\n"
            "    items.pop(-1)\n"
        )
        assert codes(source, CORE) == []

    def test_dict_style_pop_with_default_allowed(self):
        # Two-argument pop is dict.pop(key, default) — a hash lookup.
        source = (
            "for key in keys:\n"
            "    table.pop(0, None)\n"
        )
        assert codes(source, CORE) == []

    def test_pop_zero_in_loop_else_flagged(self):
        source = (
            "for item in items:\n"
            "    work(item)\n"
            "else:\n"
            "    tail.pop(0)\n"
        )
        assert codes(source, CORE) == ["P501"]

    def test_pop_zero_in_cli_allowed(self):
        source = (
            "while pending:\n"
            "    pending.pop(0)\n"
        )
        assert codes(source, CLI) == []

    def test_suppression_comment_respected(self):
        source = (
            "while pending:\n"
            "    pending.pop(0)  # lint: ignore[P501]\n"
        )
        assert codes(source, CORE) == []


class TestListCopyInLoop:
    def test_list_of_name_in_loop_flagged(self):
        source = (
            "for epoch in range(n):\n"
            "    snapshot = list(queues)\n"
        )
        assert codes(source, CORE) == ["P502"]

    def test_list_of_attribute_in_loop_flagged(self):
        source = (
            "while running:\n"
            "    dsts = list(node.fwd)\n"
        )
        assert codes(source, SIM) == ["P502"]

    def test_snapshot_in_for_header_allowed(self):
        # `for x in list(d):` at top level is the snapshot-before-
        # mutation idiom, evaluated once — not per-iteration work.
        source = (
            "for key in list(table):\n"
            "    del table[key]\n"
        )
        assert codes(source, CORE) == []

    def test_snapshot_header_of_nested_loop_flagged(self):
        # ...but the same header inside an outer loop's body runs per
        # outer iteration.
        source = (
            "for epoch in range(n):\n"
            "    for key in list(table):\n"
            "        del table[key]\n"
        )
        assert codes(source, CORE) == ["P502"]

    def test_list_of_call_in_loop_allowed(self):
        # list(map(...)) builds a new sequence; not a container copy.
        source = (
            "for epoch in range(n):\n"
            "    cells = list(map(make, ids))\n"
        )
        assert codes(source, CORE) == []

    def test_list_of_comprehension_allowed(self):
        source = (
            "for epoch in range(n):\n"
            "    out = [f(x) for x in xs]\n"
        )
        assert codes(source, CORE) == []

    def test_list_outside_loop_allowed(self):
        assert codes("snapshot = list(queues)\n", CORE) == []

    def test_list_copy_in_cli_allowed(self):
        source = (
            "for row in rows:\n"
            "    cells = list(row)\n"
        )
        assert codes(source, CLI) == []

    def test_while_test_not_a_body(self):
        # The loop condition is not body work for P502's purposes.
        source = "while list(pending):\n    step()\n"
        assert codes(source, CORE) == []


class TestInvariantMappingInLoop:
    def test_invariant_dict_comp_flagged(self):
        # The shape the incremental fluid engine deleted: membership
        # dicts rebuilt from the same inputs on every event.
        source = (
            "for event in events:\n"
            "    members = {f: caps[f] for f in flows}\n"
            "    consume(members)\n"
        )
        assert codes(source, SIM) == ["P503"]

    def test_invariant_set_comp_flagged(self):
        source = (
            "while pending:\n"
            "    live = {f for f in flows}\n"
            "    step(live)\n"
        )
        assert codes(source, CORE) == ["P503"]

    def test_invariant_dict_copy_flagged(self):
        source = (
            "for event in events:\n"
            "    cap_left = dict(capacity)\n"
            "    fill(cap_left)\n"
        )
        assert codes(source, SIM) == ["P503"]

    def test_invariant_set_copy_flagged(self):
        source = (
            "for event in events:\n"
            "    todo = set(resources)\n"
            "    drain(todo)\n"
        )
        assert codes(source, SIM) == ["P503"]

    def test_comp_over_loop_variable_allowed(self):
        # The input is rebound by the loop itself — not invariant.
        source = (
            "for batch in batches:\n"
            "    index = {item.key: item for item in batch}\n"
        )
        assert codes(source, SIM) == []

    def test_input_reassigned_in_loop_allowed(self):
        source = (
            "for event in events:\n"
            "    members = {f: caps[f] for f in flows}\n"
            "    flows = advance(flows)\n"
        )
        assert codes(source, SIM) == []

    def test_input_mutated_by_method_allowed(self):
        # Any method call on an input may mutate it; stay quiet.
        source = (
            "for event in events:\n"
            "    members = {f: caps[f] for f in flows}\n"
            "    flows.append(event.flow)\n"
        )
        assert codes(source, SIM) == []

    def test_input_store_through_subscript_allowed(self):
        source = (
            "for event in events:\n"
            "    cap_left = dict(capacity)\n"
            "    capacity[event.res] = event.cap\n"
        )
        assert codes(source, SIM) == []

    def test_empty_constructor_allowed(self):
        # set()/dict() with no inputs is a per-iteration accumulator.
        source = (
            "for event in events:\n"
            "    seen = set()\n"
            "    acc = {}\n"
        )
        assert codes(source, SIM) == []

    def test_comp_outside_loop_allowed(self):
        assert codes("members = {f: 1 for f in flows}\n", SIM) == []

    def test_presentation_layer_allowed(self):
        source = (
            "for row in rows:\n"
            "    table = {c: fmt[c] for c in cols}\n"
        )
        assert codes(source, CLI) == []

    def test_suppression_comment_respected(self):
        source = (
            "for event in events:\n"
            "    members = {f: caps[f] for f in flows}"
            "  # lint: ignore[P503]\n"
        )
        assert codes(source, SIM) == []


class TestScoping:
    def test_prefix_match_is_exact_package_boundary(self):
        # repro.corelib is NOT repro.core.
        source = (
            "while pending:\n"
            "    pending.pop(0)\n"
        )
        assert codes(source, "src/repro/corelib/fake.py") == []

    def test_rule_metadata(self):
        by_code = {rule.code: rule for rule in PERF_RULES}
        assert by_code["P501"].name == "pop-zero-in-loop"
        assert by_code["P502"].name == "list-copy-in-loop"
        assert by_code["P503"].name == "invariant-mapping-in-loop"
