"""Fixture tests for the ``N13xx`` protocol-conformance rules."""

from repro.checks.engine import check_project_source
from repro.checks.state.protocol_rules import PROTOCOL_RULES


def _codes(findings):
    return [f.rule for f in findings]


def _only(findings, code):
    return [f for f in findings if f.rule == code]


PROTO = (
    "from typing import Protocol\n"
    "\n"
    "\n"
    "class Scheduler(Protocol):\n"
    "    def plan(self, epoch):\n"
    "        ...\n"
    "\n"
    "    def advance(self, epoch, slots):\n"
    "        ...\n"
)


# ---------------------------------------------------------------------------
# N1301 protocol-missing-method
# ---------------------------------------------------------------------------
class TestN1301ProtocolMissingMethod:
    def test_catches_unimplemented_surface_method(self):
        findings = check_project_source({
            "src/repro/sched/proto.py": PROTO,
            "src/repro/sched/rotor.py": (
                "from repro.sched.proto import Scheduler\n"
                "\n"
                "\n"
                "class RotorScheduler(Scheduler):\n"
                "    def plan(self, epoch):\n"
                "        return [epoch]\n"
            ),
        }, PROTOCOL_RULES)
        n1301 = _only(findings, "N1301")
        assert n1301, _codes(findings)
        finding = n1301[0]
        assert finding.path == "src/repro/sched/rotor.py"
        assert finding.line == 4  # the implementation class line
        assert "advance()" in finding.message

    def test_clean_twin_implements_the_full_surface(self):
        findings = check_project_source({
            "src/repro/sched/proto.py": PROTO,
            "src/repro/sched/rotor.py": (
                "from repro.sched.proto import Scheduler\n"
                "\n"
                "\n"
                "class RotorScheduler(Scheduler):\n"
                "    def plan(self, epoch):\n"
                "        return [epoch]\n"
                "\n"
                "    def advance(self, epoch, slots):\n"
                "        return epoch + slots\n"
            ),
        }, PROTOCOL_RULES)
        assert findings == []

    def test_abc_with_abstractmethod_is_a_protocol_too(self):
        findings = check_project_source({
            "src/repro/sched/base.py": (
                "import abc\n"
                "\n"
                "\n"
                "class Strategy(abc.ABC):\n"
                "    @abc.abstractmethod\n"
                "    def plan(self, epoch):\n"
                "        raise NotImplementedError\n"
            ),
            "src/repro/sched/impl.py": (
                "from repro.sched.base import Strategy\n"
                "\n"
                "\n"
                "class Greedy(Strategy):\n"
                "    def other(self):\n"
                "        return 0\n"
            ),
        }, PROTOCOL_RULES)
        n1301 = _only(findings, "N1301")
        assert n1301, _codes(findings)
        assert "plan()" in n1301[0].message

    def test_concrete_defaults_on_the_protocol_are_not_required(self):
        findings = check_project_source({
            "src/repro/sched/proto.py": (
                "from typing import Protocol\n"
                "\n"
                "\n"
                "class Scheduler(Protocol):\n"
                "    def plan(self, epoch):\n"
                "        ...\n"
                "\n"
                "    def describe(self):\n"
                "        return type(self).__name__\n"
            ),
            "src/repro/sched/rotor.py": (
                "from repro.sched.proto import Scheduler\n"
                "\n"
                "\n"
                "class RotorScheduler(Scheduler):\n"
                "    def plan(self, epoch):\n"
                "        return [epoch]\n"
            ),
        }, PROTOCOL_RULES)
        assert findings == []

    def test_abstract_intermediate_of_an_abc_is_not_an_implementation(self):
        findings = check_project_source({
            "src/repro/sched/base.py": (
                "import abc\n"
                "\n"
                "\n"
                "class Strategy(abc.ABC):\n"
                "    @abc.abstractmethod\n"
                "    def plan(self, epoch):\n"
                "        raise NotImplementedError\n"
                "\n"
                "    @abc.abstractmethod\n"
                "    def advance(self, epoch):\n"
                "        raise NotImplementedError\n"
            ),
            "src/repro/sched/mid.py": (
                "import abc\n"
                "from repro.sched.base import Strategy\n"
                "\n"
                "\n"
                "class WindowedStrategy(Strategy):\n"
                "    @abc.abstractmethod\n"
                "    def window(self):\n"
                "        raise NotImplementedError\n"
                "\n"
                "    def advance(self, epoch):\n"
                "        return epoch + 1\n"
            ),
        }, PROTOCOL_RULES)
        # The intermediate is still abstract: no N1301 for its missing
        # plan(), no N1303 for its own @abstractmethod.
        assert findings == []


# ---------------------------------------------------------------------------
# N1302 protocol-signature-mismatch
# ---------------------------------------------------------------------------
class TestN1302SignatureMismatch:
    def test_catches_new_required_positional(self):
        findings = check_project_source({
            "src/repro/sched/proto.py": PROTO,
            "src/repro/sched/rotor.py": (
                "from repro.sched.proto import Scheduler\n"
                "\n"
                "\n"
                "class RotorScheduler(Scheduler):\n"
                "    def plan(self, epoch, horizon):\n"
                "        return [epoch] * horizon\n"
                "\n"
                "    def advance(self, epoch, slots):\n"
                "        return epoch + slots\n"
            ),
        }, PROTOCOL_RULES)
        n1302 = _only(findings, "N1302")
        assert n1302, _codes(findings)
        finding = n1302[0]
        assert finding.line == 5  # the offending method def
        assert "horizon" in finding.message

    def test_extra_defaulted_parameters_stay_compatible(self):
        findings = check_project_source({
            "src/repro/sched/proto.py": PROTO,
            "src/repro/sched/rotor.py": (
                "from repro.sched.proto import Scheduler\n"
                "\n"
                "\n"
                "class RotorScheduler(Scheduler):\n"
                "    def plan(self, epoch, horizon=1):\n"
                "        return [epoch] * horizon\n"
                "\n"
                "    def advance(self, epoch, slots, **kwargs):\n"
                "        return epoch + slots\n"
            ),
        }, PROTOCOL_RULES)
        assert findings == []

    def test_dropping_a_declared_keyword_parameter_is_caught(self):
        findings = check_project_source({
            "src/repro/sched/proto.py": (
                "from typing import Protocol\n"
                "\n"
                "\n"
                "class Engine(Protocol):\n"
                "    def run(self, flows, *, failure_plan=None, obs=None):\n"
                "        ...\n"
            ),
            "src/repro/sched/impl.py": (
                "from repro.sched.proto import Engine\n"
                "\n"
                "\n"
                "class SlotEngine(Engine):\n"
                "    def run(self, flows, *, obs=None):\n"
                "        return flows\n"
            ),
        }, PROTOCOL_RULES)
        n1302 = _only(findings, "N1302")
        assert n1302, _codes(findings)
        assert "failure_plan" in n1302[0].message

    def test_sibling_strategy_methods_must_match_exactly(self):
        findings = check_project_source({
            "src/repro/sim/fluid.py": (
                "class FluidSimulation:\n"
                "    def _loop_reference(self, flows, obs, t_mark):\n"
                "        return 0\n"
                "\n"
                "    def _loop_incremental(self, flows, obs):\n"
                "        return 0\n"
            ),
        }, PROTOCOL_RULES)
        n1302 = _only(findings, "N1302")
        assert n1302, _codes(findings)
        assert "_loop_incremental" in n1302[0].message
        assert "_loop_reference" in n1302[0].message

    def test_identical_sibling_signatures_are_clean(self):
        findings = check_project_source({
            "src/repro/sim/fluid.py": (
                "class FluidSimulation:\n"
                "    def _loop_reference(self, flows, obs, t_mark):\n"
                "        return 0\n"
                "\n"
                "    def _loop_incremental(self, flows, obs, t_mark):\n"
                "        return 1\n"
            ),
        }, PROTOCOL_RULES)
        assert findings == []


# ---------------------------------------------------------------------------
# N1303 abstract-leftover
# ---------------------------------------------------------------------------
class TestN1303AbstractLeftover:
    def test_catches_surviving_abstractmethod_decorator(self):
        findings = check_project_source({
            "src/repro/sched/proto.py": PROTO,
            "src/repro/sched/rotor.py": (
                "from abc import abstractmethod\n"
                "from repro.sched.proto import Scheduler\n"
                "\n"
                "\n"
                "class RotorScheduler(Scheduler):\n"
                "    @abstractmethod\n"
                "    def plan(self, epoch):\n"
                "        return [epoch]\n"
                "\n"
                "    def advance(self, epoch, slots):\n"
                "        return epoch + slots\n"
            ),
        }, PROTOCOL_RULES)
        n1303 = _only(findings, "N1303")
        assert n1303, _codes(findings)
        assert "@abstractmethod" in n1303[0].message

    def test_catches_abstract_body_for_surface_method(self):
        findings = check_project_source({
            "src/repro/sched/proto.py": PROTO,
            "src/repro/sched/rotor.py": (
                "from repro.sched.proto import Scheduler\n"
                "\n"
                "\n"
                "class RotorScheduler(Scheduler):\n"
                "    def plan(self, epoch):\n"
                "        raise NotImplementedError\n"
                "\n"
                "    def advance(self, epoch, slots):\n"
                "        return epoch + slots\n"
            ),
        }, PROTOCOL_RULES)
        n1303 = _only(findings, "N1303")
        assert n1303, _codes(findings)
        assert "plan()" in n1303[0].message

    def test_abstract_private_helper_off_surface_is_fine(self):
        findings = check_project_source({
            "src/repro/sched/proto.py": PROTO,
            "src/repro/sched/rotor.py": (
                "from repro.sched.proto import Scheduler\n"
                "\n"
                "\n"
                "class RotorScheduler(Scheduler):\n"
                "    def plan(self, epoch):\n"
                "        return [epoch]\n"
                "\n"
                "    def advance(self, epoch, slots):\n"
                "        return epoch + slots\n"
                "\n"
                "    def _hook(self, epoch):\n"
                "        pass\n"
            ),
        }, PROTOCOL_RULES)
        assert findings == []
