"""Unit tests for the per-class mutable-state models
(``repro.checks.state.model``)."""

from repro.checks.engine import parse_file
from repro.checks.flow.project import Project
from repro.checks.state.model import StateAnalysis


def _ctx(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    ctx = parse_file(path, root=tmp_path)
    assert ctx is not None
    return ctx


def _analysis(tmp_path, files):
    project = Project([_ctx(tmp_path, rel, src)
                       for rel, src in files.items()])
    return project.shared(StateAnalysis)


NODE = (
    "class Node:\n"
    "    def __init__(self, node_id, config):\n"
    "        self.node_id = node_id\n"
    "        self.config = config\n"
    "        self.depth = 0\n"
    "        self.inbox = []\n"
    "        self.fwd = {}\n"
    "\n"
    "    def receive(self, cell):\n"
    "        self.depth += 1\n"
    "        self.inbox.append(cell)\n"
    "\n"
    "    def route(self, dst, cell):\n"
    "        q = self.fwd.get(dst)\n"
    "        q.append(cell)\n"
    "\n"
    "    def drain(self):\n"
    "        for q in self.fwd.values():\n"
    "            q.clear()\n"
    "        return self._advance()\n"
    "\n"
    "    def _advance(self):\n"
    "        self.depth -= 1\n"
    "        return self.depth\n"
)


class TestFieldInventory:
    def test_init_binding_and_param_binding(self, tmp_path):
        analysis = _analysis(tmp_path, {"src/repro/core/node.py": NODE})
        model = analysis.model_for("repro.core.node.Node")
        assert model is not None
        assert model.fields["config"].param_bound
        assert model.fields["node_id"].param_bound
        assert model.fields["depth"].init_bound
        assert not model.fields["depth"].param_bound

    def test_mutated_fields_exclude_construction(self, tmp_path):
        analysis = _analysis(tmp_path, {"src/repro/core/node.py": NODE})
        model = analysis.model_for("repro.core.node.Node")
        # ``config``/``node_id`` are only bound in __init__; the rest
        # evolve after construction.
        assert model.mutated_fields() == ["depth", "fwd", "inbox"]

    def test_post_init_counts_as_construction(self, tmp_path):
        analysis = _analysis(tmp_path, {"src/repro/sim/load.py": (
            "class Workload:\n"
            "    def __post_init__(self):\n"
            "        self.rng = object()\n"
            "        self.samples = []\n"
            "\n"
            "    def draw(self):\n"
            "        self.samples.append(1)\n"
        )})
        model = analysis.model_for("repro.sim.load.Workload")
        assert model.mutated_fields() == ["samples"]

    def test_alias_mutations_reach_the_field(self, tmp_path):
        analysis = _analysis(tmp_path, {"src/repro/core/node.py": NODE})
        model = analysis.model_for("repro.core.node.Node")
        # ``q = self.fwd.get(dst); q.append(...)`` and the
        # ``for q in self.fwd.values(): q.clear()`` loop both mutate fwd.
        assert "route" in model.fields["fwd"].mutations
        assert "drain" in model.fields["fwd"].mutations

    def test_rebound_alias_is_dropped_not_invented(self, tmp_path):
        analysis = _analysis(tmp_path, {"src/repro/core/slab.py": (
            "class Slab:\n"
            "    def __init__(self):\n"
            "        self.rows = []\n"
            "\n"
            "    def shuffle(self, other):\n"
            "        rows = self.rows\n"
            "        rows = other\n"
            "        rows.append(1)\n"
        )})
        model = analysis.model_for("repro.core.slab.Slab")
        assert "shuffle" not in model.fields["rows"].mutations


class TestClosures:
    def test_self_call_closure_accumulates_reads_and_writes(self, tmp_path):
        analysis = _analysis(tmp_path, {"src/repro/core/node.py": NODE})
        model = analysis.model_for("repro.core.node.Node")
        assert model.closure_methods("drain") == {"drain", "_advance"}
        assert "depth" in model.closure_writes("drain")
        assert "depth" in model.closure_reads("drain")

    def test_mutation_evidence_prefers_non_init_site(self, tmp_path):
        analysis = _analysis(tmp_path, {"src/repro/core/node.py": NODE})
        model = analysis.model_for("repro.core.node.Node")
        method, line = model.mutation_evidence("depth")
        assert method in ("receive", "_advance")
        assert line > 1


class TestStateAnalysis:
    def test_plumbing_fields_are_bound_and_never_mutated(self, tmp_path):
        analysis = _analysis(tmp_path, {"src/repro/core/node.py": NODE})
        plumbing = analysis.plumbing_fields()
        assert "config" in plumbing
        assert "depth" not in plumbing
        assert "inbox" not in plumbing

    def test_method_write_fields_unions_over_class_hierarchy(self, tmp_path):
        analysis = _analysis(tmp_path, {
            "src/repro/core/a.py": (
                "class A:\n"
                "    def tick(self):\n"
                "        self.count = 1\n"
            ),
            "src/repro/core/b.py": (
                "class B:\n"
                "    def tick(self):\n"
                "        self.seen = []\n"
                "        self.seen.append(1)\n"
            ),
        })
        assert analysis.method_write_fields("tick") == {"count", "seen"}

    def test_method_read_fields_exclude_param_bound_plumbing(self, tmp_path):
        analysis = _analysis(tmp_path, {"src/repro/core/node.py": NODE})
        reads = analysis.method_read_fields("receive")
        assert "depth" in reads
        assert "config" not in reads
