"""Shared engine behavior: suppressions, filtering, output formats."""

import json
import textwrap

import pytest

from repro.checks import (
    check_source,
    filter_rules,
    format_json,
    format_sarif,
    format_text,
)
from repro.checks.engine import run_checks
from repro.checks.registry import ALL_RULES
from repro.checks.units_rules import UNITS_RULES, UnitLiteralRule


def lint(source, rules=None):
    return check_source(textwrap.dedent(source), rules or ALL_RULES)


BAD_LITERAL = """\
def to_us(duration_s):
    return duration_s / 1e-6
"""


class TestSuppression:
    def test_trailing_comment_suppresses(self):
        findings = lint("""\
        def to_us(duration_s):
            return duration_s / 1e-6  # lint: ignore[U101]
        """)
        assert findings == []

    def test_rule_name_works_too(self):
        findings = lint("""\
        def to_us(duration_s):
            return duration_s / 1e-6  # lint: ignore[unit-literal]
        """)
        assert findings == []

    def test_bare_ignore_suppresses_all_rules(self):
        findings = lint("""\
        def to_us(duration_s):
            return duration_s / 1e-6  # lint: ignore
        """)
        assert findings == []

    def test_preceding_comment_line_covers_next_code_line(self):
        findings = lint("""\
        def to_us(duration_s):
            # conversion for display only  # lint: ignore[U101]
            return duration_s / 1e-6
        """)
        assert findings == []

    def test_unrelated_rule_id_does_not_suppress(self):
        findings = lint("""\
        def to_us(duration_s):
            return duration_s / 1e-6  # lint: ignore[D201]
        """)
        assert [f.rule for f in findings] == ["U101"]

    def test_skip_file_pragma(self):
        findings = lint("# lint: skip-file\n" + BAD_LITERAL)
        assert findings == []

    def test_unsuppressed_finding_reported(self):
        findings = lint(BAD_LITERAL)
        assert [f.rule for f in findings] == ["U101"]
        assert findings[0].line == 2


class TestFiltering:
    def test_select_by_code(self):
        rules = filter_rules(ALL_RULES, select=["U101"])
        assert [r.code for r in rules] == ["U101"]

    def test_select_by_name(self):
        rules = filter_rules(ALL_RULES, select=["set-iteration"])
        assert [r.code for r in rules] == ["D203"]

    def test_select_family_prefix(self):
        rules = filter_rules(ALL_RULES, select=["D"])
        assert {r.code for r in rules} == {"D201", "D202", "D203"}

    def test_ignore_removes(self):
        rules = filter_rules(ALL_RULES, ignore=["I"])
        assert all(not r.code.startswith("I") for r in rules)

    def test_select_then_ignore(self):
        rules = filter_rules(ALL_RULES, select=["U"], ignore=["U103"])
        assert {r.code for r in rules} == {"U101", "U102"}


class TestFindings:
    def test_fingerprint_is_line_number_independent(self):
        a = lint(BAD_LITERAL)[0]
        b = lint("\n\n\n" + BAD_LITERAL)[0]
        assert a.line != b.line
        assert a.fingerprint == b.fingerprint

    def test_render_mentions_location_rule_and_name(self):
        finding = lint(BAD_LITERAL)[0]
        text = finding.render()
        assert "U101" in text and "unit-literal" in text
        assert ":2:" in text

    def test_format_text_counts(self):
        findings = lint(BAD_LITERAL)
        assert "1 finding" in format_text(findings)
        assert format_text([]) == "no findings"

    def test_format_json_roundtrips(self):
        findings = lint(BAD_LITERAL)
        payload = json.loads(format_json(findings))
        assert payload["count"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "U101"
        assert entry["name"] == "unit-literal"
        assert entry["fingerprint"] == findings[0].fingerprint


class TestRegistry:
    def test_codes_are_unique(self):
        codes = [rule.code for rule in ALL_RULES]
        assert len(codes) == len(set(codes))

    def test_names_are_unique_and_kebab(self):
        names = [rule.name for rule in ALL_RULES]
        assert len(names) == len(set(names))
        assert all(name == name.lower() and " " not in name for name in names)

    def test_rule_families_present(self):
        from repro.checks.engine import rule_family

        families = {rule_family(rule) for rule in ALL_RULES}
        assert families == {"U1", "D2", "I3", "O4", "P5", "F6", "T7",
                            "S8", "C9", "B10", "K11", "M12", "N13", "W14"}

    def test_unit_rules_exported(self):
        assert any(isinstance(rule, UnitLiteralRule) for rule in UNITS_RULES)


class TestRobustness:
    def test_syntactically_invalid_source_raises_cleanly(self):
        with pytest.raises(SyntaxError):
            check_source("def broken(:\n", ALL_RULES)

    def test_run_checks_reports_unparseable_file(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        (tmp_path / "ok.py").write_text(BAD_LITERAL)
        findings = run_checks([tmp_path], ALL_RULES, root=tmp_path)
        assert [f.rule for f in findings] == ["E001", "U101"]
        parse_error = findings[0]
        assert parse_error.name == "parse-error"
        assert parse_error.path == "broken.py"
        assert parse_error.line == 1


class TestSuppressionEdgeCases:
    def test_multiple_codes_on_one_line_suppress_both(self):
        findings = lint("""\
        import random
        def f(duration_s):
            return random.random() * duration_s / 1e-6  # lint: ignore[U101, D201]
        """)
        assert findings == []

    def test_multiple_codes_only_listed_rules_suppressed(self):
        findings = lint("""\
        import random
        def f(duration_s):
            return random.random() * duration_s / 1e-6  # lint: ignore[U101, D203]
        """)
        assert [f.rule for f in findings] == ["D201"]

    def test_code_and_name_mixed_in_one_comment(self):
        findings = lint("""\
        import random
        def f(duration_s):
            return random.random() * duration_s / 1e-6  # lint: ignore[unit-literal, D201]
        """)
        assert findings == []


class TestFamilyPrefixFiltering:
    def test_select_letter_digit_family(self):
        rules = filter_rules(ALL_RULES, select=["F6"])
        assert {r.code for r in rules} == {"F601", "F602", "F603"}

    def test_ignore_letter_digit_family(self):
        rules = filter_rules(ALL_RULES, ignore=["T7"])
        codes = {r.code for r in rules}
        assert "T701" not in codes and "T702" not in codes
        assert "U101" in codes

    def test_family_prefix_combines_with_exact_code(self):
        rules = filter_rules(ALL_RULES, select=["S8", "D201"])
        assert {r.code for r in rules} == {"S801", "S802", "S803", "D201"}

    def test_rule_names_are_not_treated_as_prefixes(self):
        # "unit-literal" must match only its own rule, never act as a
        # prefix; and a bogus family selects nothing.
        assert filter_rules(ALL_RULES, select=["Z9"]) == []


class TestSarifFormat:
    def test_minimal_sarif_log_shape(self):
        findings = lint(BAD_LITERAL)
        log = json.loads(format_sarif(findings, rules=ALL_RULES))
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "sirius-lint"
        (rule_entry,) = driver["rules"]
        assert rule_entry["id"] == "U101"
        assert rule_entry["name"] == "unit-literal"
        (result,) = run["results"]
        assert result["ruleId"] == "U101"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert (result["partialFingerprints"]["siriusLint/v1"]
                == findings[0].fingerprint)

    def test_empty_findings_still_a_valid_log(self):
        log = json.loads(format_sarif([]))
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []


class _StubRule(UnitLiteralRule):
    """A freely relabeled rule for family-matching tests."""

    def __init__(self, code, name):
        self.code = code
        self.name = name


class TestLongestPrefixFamilyMatching:
    # C9 and C90 coexist as distinct registered families; the shorter
    # ident must select exactly its own family, not every code it is a
    # string prefix of.
    RULES = [
        _StubRule("C901", "race-one"),
        _StubRule("C902", "race-two"),
        _StubRule("C9001", "imaginary-one"),
        _StubRule("B1001", "blocking-one"),
        _StubRule("K1101", "pickle-one"),
    ]

    def test_short_family_does_not_swallow_longer_family(self):
        rules = filter_rules(self.RULES, select=["C9"])
        assert {r.code for r in rules} == {"C901", "C902"}

    def test_longer_family_selects_only_itself(self):
        rules = filter_rules(self.RULES, select=["C90"])
        assert {r.code for r in rules} == {"C9001"}

    def test_ignore_respects_family_boundaries(self):
        rules = filter_rules(self.RULES, ignore=["C9"])
        assert {r.code for r in rules} == {"C9001", "B1001", "K1101"}

    def test_unregistered_prefix_falls_back_to_code_prefix(self):
        # "B1" names no registered family here, so it behaves as a
        # plain code prefix and still finds the B10xx rules.
        rules = filter_rules(self.RULES, select=["B1"])
        assert {r.code for r in rules} == {"B1001"}

    def test_new_families_selectable_from_registry(self):
        rules = filter_rules(ALL_RULES, select=["C9", "B10", "K11"])
        assert {r.code for r in rules} == {"C901", "C902", "C903",
                                           "B1001", "B1002",
                                           "K1101", "K1102"}

    def test_family_of_code_parses_mixed_lengths(self):
        from repro.checks.engine import family_of_code

        assert family_of_code("U101") == "U1"
        assert family_of_code("C901") == "C9"
        assert family_of_code("B1001") == "B10"
        assert family_of_code("K1101") == "K11"
        assert family_of_code("E001") == "E0"


class TestLintStats:
    def test_counts_and_timings_populated(self, tmp_path):
        from repro.checks.engine import LintStats

        target = tmp_path / "mod.py"
        target.write_text("def to_us(duration_s):\n"
                          "    return duration_s / 1e-6\n",
                          encoding="utf-8")
        stats = LintStats()
        findings = run_checks([target], ALL_RULES, root=tmp_path,
                              stats=stats)
        assert stats.files == 1
        assert stats.total_findings == len(findings) > 0
        assert stats.findings_per_family.get("U1", 0) >= 1
        assert stats.total_s >= 0.0
        rendered = stats.render()
        assert "files parsed" in rendered
        assert "U1xx" in rendered

    def test_render_with_no_findings(self):
        from repro.checks.engine import LintStats

        stats = LintStats()
        assert "findings            0" in stats.render()


class TestParseCache:
    def test_reparse_skipped_until_file_changes(self, tmp_path):
        import os

        from repro.checks.engine import clear_parse_cache, parse_file

        target = tmp_path / "mod.py"
        target.write_text("x = 1\n", encoding="utf-8")
        clear_parse_cache()
        first = parse_file(target, root=tmp_path)
        again = parse_file(target, root=tmp_path)
        assert again is first  # cache hit: identical context object

        target.write_text("x = 2\n", encoding="utf-8")
        stat = target.stat()
        os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
        changed = parse_file(target, root=tmp_path)
        assert changed is not first
        clear_parse_cache()
