"""Shared engine behavior: suppressions, filtering, output formats."""

import json
import textwrap

import pytest

from repro.checks import check_source, filter_rules, format_json, format_text
from repro.checks.engine import run_checks
from repro.checks.registry import ALL_RULES
from repro.checks.units_rules import UNITS_RULES, UnitLiteralRule


def lint(source, rules=None):
    return check_source(textwrap.dedent(source), rules or ALL_RULES)


BAD_LITERAL = """\
def to_us(duration_s):
    return duration_s / 1e-6
"""


class TestSuppression:
    def test_trailing_comment_suppresses(self):
        findings = lint("""\
        def to_us(duration_s):
            return duration_s / 1e-6  # lint: ignore[U101]
        """)
        assert findings == []

    def test_rule_name_works_too(self):
        findings = lint("""\
        def to_us(duration_s):
            return duration_s / 1e-6  # lint: ignore[unit-literal]
        """)
        assert findings == []

    def test_bare_ignore_suppresses_all_rules(self):
        findings = lint("""\
        def to_us(duration_s):
            return duration_s / 1e-6  # lint: ignore
        """)
        assert findings == []

    def test_preceding_comment_line_covers_next_code_line(self):
        findings = lint("""\
        def to_us(duration_s):
            # conversion for display only  # lint: ignore[U101]
            return duration_s / 1e-6
        """)
        assert findings == []

    def test_unrelated_rule_id_does_not_suppress(self):
        findings = lint("""\
        def to_us(duration_s):
            return duration_s / 1e-6  # lint: ignore[D201]
        """)
        assert [f.rule for f in findings] == ["U101"]

    def test_skip_file_pragma(self):
        findings = lint("# lint: skip-file\n" + BAD_LITERAL)
        assert findings == []

    def test_unsuppressed_finding_reported(self):
        findings = lint(BAD_LITERAL)
        assert [f.rule for f in findings] == ["U101"]
        assert findings[0].line == 2


class TestFiltering:
    def test_select_by_code(self):
        rules = filter_rules(ALL_RULES, select=["U101"])
        assert [r.code for r in rules] == ["U101"]

    def test_select_by_name(self):
        rules = filter_rules(ALL_RULES, select=["set-iteration"])
        assert [r.code for r in rules] == ["D203"]

    def test_select_family_prefix(self):
        rules = filter_rules(ALL_RULES, select=["D"])
        assert {r.code for r in rules} == {"D201", "D202", "D203"}

    def test_ignore_removes(self):
        rules = filter_rules(ALL_RULES, ignore=["I"])
        assert all(not r.code.startswith("I") for r in rules)

    def test_select_then_ignore(self):
        rules = filter_rules(ALL_RULES, select=["U"], ignore=["U103"])
        assert {r.code for r in rules} == {"U101", "U102"}


class TestFindings:
    def test_fingerprint_is_line_number_independent(self):
        a = lint(BAD_LITERAL)[0]
        b = lint("\n\n\n" + BAD_LITERAL)[0]
        assert a.line != b.line
        assert a.fingerprint == b.fingerprint

    def test_render_mentions_location_rule_and_name(self):
        finding = lint(BAD_LITERAL)[0]
        text = finding.render()
        assert "U101" in text and "unit-literal" in text
        assert ":2:" in text

    def test_format_text_counts(self):
        findings = lint(BAD_LITERAL)
        assert "1 finding" in format_text(findings)
        assert format_text([]) == "no findings"

    def test_format_json_roundtrips(self):
        findings = lint(BAD_LITERAL)
        payload = json.loads(format_json(findings))
        assert payload["count"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "U101"
        assert entry["name"] == "unit-literal"
        assert entry["fingerprint"] == findings[0].fingerprint


class TestRegistry:
    def test_codes_are_unique(self):
        codes = [rule.code for rule in ALL_RULES]
        assert len(codes) == len(set(codes))

    def test_names_are_unique_and_kebab(self):
        names = [rule.name for rule in ALL_RULES]
        assert len(names) == len(set(names))
        assert all(name == name.lower() and " " not in name for name in names)

    def test_rule_families_present(self):
        families = {rule.code[0] for rule in ALL_RULES}
        assert families == {"U", "D", "I", "O", "P"}

    def test_unit_rules_exported(self):
        assert any(isinstance(rule, UnitLiteralRule) for rule in UNITS_RULES)


class TestRobustness:
    def test_syntactically_invalid_source_raises_cleanly(self):
        with pytest.raises(SyntaxError):
            check_source("def broken(:\n", ALL_RULES)

    def test_run_checks_reports_unparseable_file(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        (tmp_path / "ok.py").write_text(BAD_LITERAL)
        findings = run_checks([tmp_path], ALL_RULES, root=tmp_path)
        assert [f.rule for f in findings] == ["E001", "U101"]
        parse_error = findings[0]
        assert parse_error.name == "parse-error"
        assert parse_error.path == "broken.py"
        assert parse_error.line == 1
