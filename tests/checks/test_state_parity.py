"""Fixture tests for the ``W14xx`` backend state-parity rules.

The centrepiece is the seeded-fault acceptance test: a miniature
network/vectorized-engine pair (the shape of
``repro.core.network``/``repro.core.vectorized``) where deleting one
state-field write from the vectorized copy must produce a ``W1401``
finding.
"""

from repro.checks.engine import check_project_source
from repro.checks.state.parity_rules import STATE_PARITY_RULES


def _codes(findings):
    return [f.rule for f in findings]


def _only(findings, code):
    return [f for f in findings if f.rule == code]


NET = (
    "class Node:\n"
    "    def __init__(self, config):\n"
    "        self.config = config\n"
    "        self.depth = 0\n"
    "        self.inbox = []\n"
    "        self.outbox = []\n"
    "\n"
    "\n"
    "class Result:\n"
    "    def __init__(self, *, delivered, peak):\n"
    "        self.delivered = delivered\n"
    "        self.peak = peak\n"
    "\n"
    "\n"
    "class Network:\n"
    "    def __init__(self, config):\n"
    "        self.config = config\n"
    "        self.nodes = [Node(config)]\n"
    "\n"
    "    def run(self, flows, obs):\n"
    "        prof = obs.profiler\n"
    "        t = prof.start_run()\n"
    "        delivered = 0\n"
    "        for node in self.nodes:\n"
    "            node.inbox.append(flows)\n"
    "            node.depth += 1\n"
    "            node.outbox.append(flows)\n"
    "            delivered += len(node.inbox)\n"
    "        t = prof.lap('deliver', t)\n"
    "        prof.lap('transmit', t)\n"
    "        return Result(delivered=delivered, peak=1)\n"
)

VEC_BODY = (
    "from repro.core.net import Result\n"
    "\n"
    "\n"
    "class VecEngine:\n"
    "    def __init__(self, network):\n"
    "        self.net = network\n"
    "\n"
    "    def run(self, flows, obs):\n"
    "        prof = obs.profiler\n"
    "        t = prof.start_run()\n"
    "        delivered = 0\n"
    "        nodes = self.net.nodes\n"
    "        for node in nodes:\n"
    "            node.inbox.append(flows)\n"
    "            node.depth += 1\n"
    "            node.outbox.append(flows)\n"
    "            delivered += len(node.inbox)\n"
    "        t = prof.lap('deliver', t)\n"
    "        prof.lap('transmit', t)\n"
    "        return Result(delivered=delivered, peak=1)\n"
)


class TestW1401BackendWriteSet:
    def test_matched_backends_are_clean(self):
        findings = check_project_source({
            "src/repro/core/net.py": NET,
            "src/repro/core/vec.py": VEC_BODY,
        }, STATE_PARITY_RULES)
        assert findings == []

    def test_seeded_fault_deleting_one_write_is_caught(self):
        # The acceptance scenario: drop a single state-field write from
        # the vectorized copy and the write sets diverge.
        seeded = VEC_BODY.replace("            node.depth += 1\n", "")
        assert seeded != VEC_BODY
        findings = check_project_source({
            "src/repro/core/net.py": NET,
            "src/repro/core/vec.py": seeded,
        }, STATE_PARITY_RULES)
        w1401 = _only(findings, "W1401")
        assert w1401, _codes(findings)
        finding = w1401[0]
        assert finding.path == "src/repro/core/vec.py"
        assert "'nodes.depth'" in finding.message
        assert "Network.run" in finding.message

    def test_mutation_through_aliases_counts_as_a_write(self):
        # ``self.net.nodes`` vs a two-step local alias chain: both
        # normalize to the same ``nodes.*`` signatures, so no findings.
        aliased = VEC_BODY.replace(
            "        nodes = self.net.nodes\n"
            "        for node in nodes:\n",
            "        net = self.net\n"
            "        for node in net.nodes:\n",
        )
        assert aliased != VEC_BODY
        findings = check_project_source({
            "src/repro/core/net.py": NET,
            "src/repro/core/vec.py": aliased,
        }, STATE_PARITY_RULES)
        assert findings == []

    def test_single_loop_has_no_siblings_to_diverge_from(self):
        findings = check_project_source({
            "src/repro/core/net.py": NET,
        }, STATE_PARITY_RULES)
        assert findings == []

    def test_module_level_lap_helpers_are_not_backend_loops(self):
        # A test fixture replaying a profile is not an execution
        # strategy, however backend-like its lap labels look.
        findings = check_project_source({
            "src/repro/core/net.py": NET,
            "tests/obs/helper.py": (
                "def recorded_profile(prof):\n"
                "    t = prof.start_run()\n"
                "    t = prof.lap('deliver', t)\n"
                "    prof.lap('transmit', t)\n"
            ),
        }, STATE_PARITY_RULES)
        assert findings == []


class TestW1402BackendResultFields:
    def test_catches_missing_result_keyword(self):
        dropped = VEC_BODY.replace(
            "        return Result(delivered=delivered, peak=1)\n",
            "        return Result(delivered=delivered)\n",
        )
        assert dropped != VEC_BODY
        findings = check_project_source({
            "src/repro/core/net.py": NET,
            "src/repro/core/vec.py": dropped,
        }, STATE_PARITY_RULES)
        w1402 = _only(findings, "W1402")
        assert w1402, _codes(findings)
        assert "'peak'" in w1402[0].message
        assert "VecEngine.run" in w1402[0].message

    def test_class_built_by_one_loop_only_is_exempt(self):
        # ``Network.run`` dispatch-constructing the engine has a single
        # builder; kwarg parity applies only to shared result classes.
        extra = VEC_BODY.replace(
            "        prof.lap('transmit', t)\n",
            "        prof.lap('transmit', t)\n"
            "        trace = VecTrace(epochs=1)\n"
            "        del trace\n",
        ) + (
            "\n"
            "\n"
            "class VecTrace:\n"
            "    def __init__(self, *, epochs):\n"
            "        self.epochs = epochs\n"
        )
        findings = check_project_source({
            "src/repro/core/net.py": NET,
            "src/repro/core/vec.py": extra,
        }, STATE_PARITY_RULES)
        assert findings == []


class TestW1403BackendReadSet:
    def test_catches_dropped_node_state_read(self):
        dropped = VEC_BODY.replace(
            "            delivered += len(node.inbox)\n",
            "            delivered += 1\n",
        )
        assert dropped != VEC_BODY
        findings = check_project_source({
            "src/repro/core/net.py": NET,
            "src/repro/core/vec.py": dropped,
        }, STATE_PARITY_RULES)
        w1403 = _only(findings, "W1403")
        # ``node.inbox`` is still *written* by the seeded copy, so the
        # pure append keeps parity; drop the write too to see the read
        # divergence.
        assert w1403 == []
        dropped_both = dropped.replace(
            "            node.inbox.append(flows)\n", "")
        findings = check_project_source({
            "src/repro/core/net.py": NET,
            "src/repro/core/vec.py": dropped_both,
        }, STATE_PARITY_RULES)
        w1403 = _only(findings, "W1403")
        assert w1403, _codes(findings)
        assert "'nodes.inbox'" in w1403[0].message

    def test_self_level_caching_differences_are_exempt(self):
        # The incremental fluid engine keeps ``self._capacity`` caches
        # the reference loop rebuilds from scratch; only ``nodes.*``
        # state participates in read parity.
        cached = VEC_BODY.replace(
            "        delivered = 0\n",
            "        delivered = 0\n"
            "        self._scratch = {}\n"
            "        warm = self._scratch\n",
        )
        findings = check_project_source({
            "src/repro/core/net.py": NET,
            "src/repro/core/vec.py": cached,
        }, STATE_PARITY_RULES)
        assert _only(findings, "W1403") == []
