"""Fixture tests for the ``T7xx`` determinism-taint rules."""

from repro.checks.engine import check_project_source, check_source
from repro.checks.flow.taint_rules import TAINT_FLOW_RULES


def _codes(findings):
    return [f.rule for f in findings]


class TestT701NondetReachesRun:
    def test_catches_wall_clock_reachable_from_run(self):
        findings = check_source(
            "import time\n"
            "class SiriusNetwork:\n"
            "    def run(self):\n"
            "        return self._stamp()\n"
            "    def _stamp(self):\n"
            "        return time.time()\n",
            TAINT_FLOW_RULES,
            relpath="src/repro/core/network.py",
        )
        assert "T701" in _codes(findings)
        t701 = next(f for f in findings if f.rule == "T701")
        assert t701.line == 6  # anchored at the source, not the entry
        assert "SiriusNetwork.run" in t701.message
        assert "_stamp" in t701.message

    def test_clean_twin_injectable_clock_is_silent(self):
        findings = check_source(
            "class SiriusNetwork:\n"
            "    def __init__(self, clock):\n"
            "        self._clock = clock\n"
            "    def run(self):\n"
            "        return self._stamp()\n"
            "    def _stamp(self):\n"
            "        return self._clock()\n",
            TAINT_FLOW_RULES,
            relpath="src/repro/core/network.py",
        )
        assert findings == []

    def test_catches_source_across_files(self):
        findings = check_project_source({
            "src/repro/core/network.py": (
                "from repro.phy.noise import thermal_seed\n"
                "class SiriusNetwork:\n"
                "    def run(self):\n"
                "        return thermal_seed()\n"
            ),
            "src/repro/phy/noise.py": (
                "import os\n"
                "def thermal_seed():\n"
                "    return os.urandom(8)\n"
            ),
        }, TAINT_FLOW_RULES)
        t701 = [f for f in findings if f.rule == "T701"]
        assert t701, _codes(findings)
        assert t701[0].path == "src/repro/phy/noise.py"

    def test_cross_file_finding_suppressed_at_source_line(self):
        # The entry point is in one file, the source in another; the
        # suppression comment sits next to the *source* and must win.
        findings = check_project_source({
            "src/repro/core/network.py": (
                "from repro.phy.noise import thermal_seed\n"
                "class SiriusNetwork:\n"
                "    def run(self):\n"
                "        return thermal_seed()\n"
            ),
            "src/repro/phy/noise.py": (
                "import os\n"
                "def thermal_seed():\n"
                "    return os.urandom(8)  # lint: ignore[T701]\n"
            ),
        }, TAINT_FLOW_RULES)
        assert [f for f in findings if f.rule == "T701"] == []

    def test_unreachable_source_is_not_reported(self):
        findings = check_source(
            "import time\n"
            "class SiriusNetwork:\n"
            "    def run(self):\n"
            "        return 0\n"
            "def bench_only():\n"
            "    return time.perf_counter()\n",
            [rule for rule in TAINT_FLOW_RULES if rule.code == "T701"],
            relpath="src/repro/core/network.py",
        )
        assert findings == []

    def test_obs_modules_are_exempt(self):
        findings = check_project_source({
            "src/repro/core/network.py": (
                "from repro.obs.profiling import stamp\n"
                "class SiriusNetwork:\n"
                "    def run(self):\n"
                "        return stamp()\n"
            ),
            "src/repro/obs/profiling.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.perf_counter()\n"
            ),
        }, [rule for rule in TAINT_FLOW_RULES if rule.code == "T701"])
        assert findings == []

    def test_set_iteration_with_d203_suppression_carries_over(self):
        source = (
            "class SiriusNetwork:\n"
            "    def run(self, ids):\n"
            "        pending = set(ids)\n"
            "        # order-insensitive sum  # lint: ignore[D203]\n"
            "        return sum(x for x in pending)\n"
        )
        findings = check_source(
            source,
            [rule for rule in TAINT_FLOW_RULES if rule.code == "T701"],
            relpath="src/repro/core/network.py",
        )
        assert findings == []


class TestT702TaintedReturn:
    def test_catches_tainted_return_in_sim_critical_module(self):
        findings = check_source(
            "import random\n"
            "def jitter_scale():\n"
            "    return random.random()\n",
            [rule for rule in TAINT_FLOW_RULES if rule.code == "T702"],
            relpath="src/repro/phy/jitter.py",
        )
        assert _codes(findings) == ["T702"]
        assert "jitter_scale" in findings[0].message

    def test_taint_flows_through_helper_summary(self):
        findings = check_source(
            "import time\n"
            "def _raw():\n"
            "    return time.monotonic()\n"
            "def scaled():\n"
            "    base = _raw()\n"
            "    return base * 2.0\n",
            [rule for rule in TAINT_FLOW_RULES if rule.code == "T702"],
            relpath="src/repro/phy/jitter.py",
        )
        assert _codes(findings) == ["T702", "T702"]

    def test_unseeded_rng_constructor_is_a_source(self):
        findings = check_source(
            "import random\n"
            "def draw():\n"
            "    rng = random.Random()\n"
            "    return rng.random()\n",
            [rule for rule in TAINT_FLOW_RULES if rule.code == "T702"],
            relpath="src/repro/workload/synth.py",
        )
        assert _codes(findings) == ["T702"]

    def test_clean_twin_seeded_rng_is_silent(self):
        findings = check_source(
            "import random\n"
            "def draw(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n",
            [rule for rule in TAINT_FLOW_RULES if rule.code == "T702"],
            relpath="src/repro/workload/synth.py",
        )
        assert findings == []

    def test_non_critical_module_not_reported(self):
        findings = check_source(
            "import time\n"
            "def bench_stamp():\n"
            "    return time.perf_counter()\n",
            [rule for rule in TAINT_FLOW_RULES if rule.code == "T702"],
            relpath="src/repro/perf/bench.py",
        )
        assert findings == []

    def test_taint_killed_by_reassignment(self):
        findings = check_source(
            "import time\n"
            "def windowed():\n"
            "    t = time.monotonic()\n"
            "    t = 0.0\n"
            "    return t\n",
            [rule for rule in TAINT_FLOW_RULES if rule.code == "T702"],
            relpath="src/repro/phy/jitter.py",
        )
        assert findings == []
