"""CFG and dataflow-framework tests for ``repro.checks.flow``."""

import ast

from repro.checks.flow.cfg import build_cfg
from repro.checks.flow.dataflow import (
    ReachingDefinitions,
    assigned_names,
    statement_envs,
)


def _fn(source):
    tree = ast.parse(source)
    return tree.body[0]


def _env_at(source, marker):
    """Reaching-definitions environment before the statement whose
    source line contains ``marker``."""
    fn = _fn(source)
    envs = statement_envs(ReachingDefinitions(), fn)
    lines = source.splitlines()
    target_line = next(i + 1 for i, text in enumerate(lines)
                       if marker in text)
    for node in ast.walk(fn):
        if getattr(node, "lineno", None) == target_line and id(node) in envs:
            return envs[id(node)]
    raise AssertionError(f"no statement on marker line {target_line}")


class TestCfgShape:
    def test_if_else_produces_branch_and_join_blocks(self):
        cfg = build_cfg(_fn(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        ))
        preds = cfg.predecessors()
        join_blocks = [bid for bid, ps in preds.items() if len(ps) >= 2]
        assert join_blocks, "if/else must rejoin somewhere"

    def test_while_has_back_edge(self):
        cfg = build_cfg(_fn(
            "def f(n):\n"
            "    while n:\n"
            "        n -= 1\n"
            "    return n\n"
        ))
        # Some block's successor set must include an earlier block.
        assert any(succ <= bid for bid, block in cfg.blocks.items()
                   for succ in block.successors if block.statements)

    def test_return_routes_to_exit(self):
        cfg = build_cfg(_fn(
            "def f(x):\n"
            "    if x:\n"
            "        return 1\n"
            "    return 2\n"
        ))
        return_blocks = [
            b for b in cfg.blocks.values()
            if any(isinstance(s, ast.Return) for s in b.statements)
        ]
        assert return_blocks
        for block in return_blocks:
            assert cfg.exit_id in block.successors

    def test_try_handlers_are_reachable(self):
        cfg = build_cfg(_fn(
            "def f(x):\n"
            "    try:\n"
            "        y = risky(x)\n"
            "    except ValueError:\n"
            "        y = 0\n"
            "    return y\n"
        ))
        handler_stmts = sum(
            1 for b in cfg.blocks.values() for s in b.statements
            if isinstance(s, ast.Assign)
        )
        assert handler_stmts == 2  # both assignments present in blocks


class TestAssignedNames:
    def test_tuple_and_starred_targets_unpack(self):
        target = ast.parse("a, (b, *c) = x").body[0].targets[0]
        assert set(assigned_names(target)) == {"a", "b", "c"}


class TestReachingDefinitions:
    def test_branch_join_merges_definitions(self):
        env = _env_at(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n",
            "return a",
        )
        assert env["a"] == {3, 5}

    def test_straight_line_kills_prior_definition(self):
        env = _env_at(
            "def f(x):\n"
            "    a = 1\n"
            "    a = 2\n"
            "    return a\n",
            "return a",
        )
        assert env["a"] == {3}

    def test_loop_body_definition_reaches_after_loop(self):
        env = _env_at(
            "def f(n):\n"
            "    a = 0\n"
            "    while n:\n"
            "        a = a + 1\n"
            "    return a\n",
            "return a",
        )
        assert env["a"] == {2, 4}

    def test_parameters_seed_the_entry_environment(self):
        env = _env_at(
            "def f(x, *rest, flag=False):\n"
            "    return x\n",
            "return x",
        )
        assert env["x"] == {1}
        assert env["rest"] == {1}
        assert env["flag"] == {1}
