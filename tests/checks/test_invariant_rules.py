"""Invariant rule family: good/bad fixture pairs per rule."""

import textwrap

from repro.checks import check_source
from repro.checks.invariant_rules import INVARIANT_RULES


def lint(source):
    return check_source(textwrap.dedent(source), INVARIANT_RULES)


def codes(source):
    return [f.rule for f in lint(source)]


class TestFrozenMutation:
    """I301 — writes to frozen-dataclass fields."""

    def test_bad_direct_assignment_in_method(self):
        assert codes("""\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SlotTiming:
            guardband_s: float = 1.0

            def stretch(self, factor):
                self.guardband_s = self.guardband_s * factor
        """) == ["I301"]

    def test_bad_augmented_assignment(self):
        assert codes("""\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Counter:
            n: int = 0

            def bump(self):
                self.n += 1
        """) == ["I301"]

    def test_bad_setattr_bypass_outside_post_init(self):
        assert codes("""\
        def hack(timing):
            object.__setattr__(timing, "guardband_s", 0.0)
        """) == ["I301"]

    def test_good_setattr_inside_post_init(self):
        assert codes("""\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Derived:
            a: float

            def __post_init__(self):
                object.__setattr__(self, "b", self.a * 2)
        """) == []

    def test_good_mutation_in_unfrozen_dataclass(self):
        assert codes("""\
        from dataclasses import dataclass

        @dataclass
        class Mutable:
            n: int = 0

            def bump(self):
                self.n += 1
        """) == []

    def test_good_reading_fields(self):
        assert codes("""\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SlotTiming:
            guardband_s: float = 1.0

            def doubled(self):
                return self.guardband_s * 2
        """) == []


class TestMissingValidator:
    """I302 — *Config dataclasses without __post_init__."""

    def test_bad_config_without_validator(self):
        assert codes("""\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SweepConfig:
            load: float = 0.5
        """) == ["I302"]

    def test_good_config_with_validator(self):
        assert codes("""\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SweepConfig:
            load: float = 0.5

            def __post_init__(self):
                if self.load <= 0:
                    raise ValueError("load must be positive")
        """) == []

    def test_good_non_config_class_exempt(self):
        assert codes("""\
        from dataclasses import dataclass

        @dataclass
        class Result:
            value: float = 0.0
        """) == []

    def test_good_config_that_is_not_a_dataclass(self):
        assert codes("""\
        class LegacyConfig:
            pass
        """) == []


class TestScheduleBypass:
    """I303 — CyclicSchedule built without the permutation check."""

    def test_bad_unverified_construction(self):
        assert codes("""\
        from repro.core.schedule import CyclicSchedule

        def build(topo):
            return CyclicSchedule(topo)
        """) == ["I303"]

    def test_good_verified_in_same_scope(self):
        assert codes("""\
        from repro.core.schedule import CyclicSchedule

        def build(topo):
            schedule = CyclicSchedule(topo)
            schedule.verify_contention_free()
            return schedule
        """) == []

    def test_bad_verify_in_other_function_does_not_count(self):
        assert codes("""\
        from repro.core.schedule import CyclicSchedule

        def build(topo):
            return CyclicSchedule(topo)

        def check(schedule):
            schedule.verify_contention_free()
        """) == ["I303"]

    def test_good_unrelated_constructor(self):
        assert codes("""\
        def build(topo):
            return Schedule(topo)
        """) == []
