"""Git-diff-aware file selection (``sirius-lint --changed-only``)."""

import subprocess

import pytest

from repro.checks.cli import changed_python_files, main


def _git(cwd, *args):
    proc = subprocess.run(["git", *args], cwd=cwd, capture_output=True,
                          text=True)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.fixture
def repo(tmp_path):
    """A git repo with one committed clean file on ``main``."""
    _git(tmp_path, "init", "-q", "-b", "main")
    _git(tmp_path, "config", "user.email", "lint@test")
    _git(tmp_path, "config", "user.name", "lint")
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro.checks]\npaths = ['src/repro']\n")
    untouched = pkg / "untouched.py"
    untouched.write_text("def stays_clean():\n    return 1\n")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


class TestChangedPythonFiles:
    def test_untracked_file_is_selected(self, repo):
        new = repo / "src" / "repro" / "fresh.py"
        new.write_text("x = 1\n")
        changed = changed_python_files(repo, "main")
        assert changed == [new]

    def test_uncommitted_edit_is_selected(self, repo):
        target = repo / "src" / "repro" / "untouched.py"
        target.write_text("def stays_clean():\n    return 2\n")
        changed = changed_python_files(repo, "main")
        assert changed == [target]

    def test_branch_commits_diff_against_merge_base(self, repo):
        _git(repo, "checkout", "-q", "-b", "feature")
        branch_file = repo / "src" / "repro" / "branched.py"
        branch_file.write_text("y = 2\n")
        _git(repo, "add", "-A")
        _git(repo, "commit", "-q", "-m", "branch work")
        changed = changed_python_files(repo, "main")
        assert changed == [branch_file]

    def test_clean_tree_selects_nothing(self, repo):
        assert changed_python_files(repo, "main") == []

    def test_non_python_and_deleted_files_are_skipped(self, repo):
        (repo / "notes.md").write_text("not python\n")
        tracked = repo / "src" / "repro" / "untouched.py"
        tracked.unlink()
        assert changed_python_files(repo, "main") == []

    def test_outside_a_work_tree_returns_none(self, tmp_path):
        bare = tmp_path / "plain"
        bare.mkdir()
        assert changed_python_files(bare, "main") is None


class TestCliChangedOnly:
    def test_touched_bad_file_fails_untouched_does_not(self, repo,
                                                       monkeypatch, capsys):
        # Seed a violation into the *committed* file and a fresh one
        # into a new file: --changed-only must flag only the new file.
        bad = repo / "src" / "repro" / "touched.py"
        bad.write_text("def f(t_s):\n    return t_s / 1e-6\n")
        monkeypatch.chdir(repo)
        exit_code = main(["--changed-only", "--no-baseline"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "touched.py" in out
        assert "untouched.py" not in out

    def test_clean_tree_short_circuits(self, repo, monkeypatch, capsys):
        monkeypatch.chdir(repo)
        exit_code = main(["--changed-only", "--no-baseline"])
        assert exit_code == 0
        assert "no changed files" in capsys.readouterr().out

    def test_changes_outside_linted_paths_are_ignored(self, repo,
                                                      monkeypatch, capsys):
        elsewhere = repo / "scripts"
        elsewhere.mkdir()
        (elsewhere / "helper.py").write_text(
            "def f(t_s):\n    return t_s / 1e-6\n")
        monkeypatch.chdir(repo)
        exit_code = main(["--changed-only", "--no-baseline"])
        capsys.readouterr()
        assert exit_code == 0

    def test_unexercised_baseline_entries_are_not_stale(self, repo,
                                                        monkeypatch, capsys):
        # Baseline the committed violation, then change only another
        # file: the baselined entry was never re-linted, so it must not
        # be reported stale.
        bad = repo / "src" / "repro" / "legacy.py"
        bad.write_text("def f(t_s):\n    return t_s / 1e-6\n")
        _git(repo, "add", "-A")
        _git(repo, "commit", "-q", "-m", "legacy violation")
        monkeypatch.chdir(repo)
        assert main(["--write-baseline"]) == 0
        capsys.readouterr()
        fresh = repo / "src" / "repro" / "fresh.py"
        fresh.write_text("z = 3\n")
        exit_code = main(["--changed-only"])
        capsys.readouterr()
        assert exit_code == 0

    def test_cross_file_closures_stay_sound(self, repo, monkeypatch,
                                            capsys):
        # The reference loop delegates its node writes to Node.deliver
        # in an *unchanged* file while the vectorized sibling writes
        # inline.  Touching only the vectorized file must not invent
        # W14xx parity findings from a call graph truncated to the
        # changed files — project rules see the whole tree and only the
        # report is narrowed.
        pkg = repo / "src" / "repro"
        (pkg / "nodes.py").write_text(
            "class Node:\n"
            "    def __init__(self, config):\n"
            "        self.config = config\n"
            "        self.depth = 0\n"
            "        self.inbox = []\n"
            "\n"
            "    def deliver(self, flows):\n"
            "        self.inbox.append(flows)\n"
            "        self.depth += 1\n"
            "        return len(self.inbox)\n"
        )
        (pkg / "net.py").write_text(
            "class Network:\n"
            "    def __init__(self, config):\n"
            "        self.config = config\n"
            "        self.nodes = []\n"
            "\n"
            "    def run(self, flows, obs):\n"
            "        prof = obs.profiler\n"
            "        t = prof.start_run()\n"
            "        delivered = 0\n"
            "        for node in self.nodes:\n"
            "            delivered += node.deliver(flows)\n"
            "        t = prof.lap('deliver', t)\n"
            "        prof.lap('transmit', t)\n"
            "        return delivered\n"
        )
        (pkg / "vec.py").write_text(
            "class VecEngine:\n"
            "    def __init__(self, network):\n"
            "        self.net = network\n"
            "\n"
            "    def run(self, flows, obs):\n"
            "        prof = obs.profiler\n"
            "        t = prof.start_run()\n"
            "        delivered = 0\n"
            "        nodes = self.net.nodes\n"
            "        for node in nodes:\n"
            "            node.inbox.append(flows)\n"
            "            node.depth += 1\n"
            "            delivered += len(node.inbox)\n"
            "        t = prof.lap('deliver', t)\n"
            "        prof.lap('transmit', t)\n"
            "        return delivered\n"
        )
        _git(repo, "add", "-A")
        _git(repo, "commit", "-q", "-m", "two backends")
        vec = pkg / "vec.py"
        vec.write_text(vec.read_text() + "\n# touched\n")
        monkeypatch.chdir(repo)
        exit_code = main(["--changed-only", "--no-baseline"])
        out = capsys.readouterr().out
        assert exit_code == 0, out

    def test_outside_git_is_a_usage_error(self, tmp_path, monkeypatch,
                                          capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.checks]\npaths = ['src/repro']\n")
        (pkg / "mod.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        exit_code = main(["--changed-only"])
        assert exit_code == 2
        assert "git work tree" in capsys.readouterr().err
