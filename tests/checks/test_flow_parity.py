"""Fixture tests for the ``S8xx`` fast-path parity-audit rules."""

from repro.checks.engine import check_source
from repro.checks.flow.parity_rules import PARITY_RULES


def _codes(findings):
    return [f.rule for f in findings]


#: Both paths deliver; the fast path additionally resets state the
#: reference path never touches — the injected parity bug.
_BUGGY = (
    "class Node:\n"
    "    def deliver(self):\n"
    "        pass\n"
    "    def reset_window(self):\n"
    "        pass\n"
    "class Net:\n"
    "    def step(self, nodes, active, fast):\n"
    "        if fast:\n"
    "            for idx in sorted(active):\n"
    "                node = nodes[idx]\n"
    "                node.deliver()\n"
    "                node.reset_window()\n"
    "        else:\n"
    "            for node in nodes:\n"
    "                node.deliver()\n"
)

#: Clean twin: identical node mutations on both sides; the fast side
#: also maintains its function-local *bookkeeping* set, which is exempt
#: by design (a parameter would not be — that state is shared).
_CLEAN = (
    "class Node:\n"
    "    def deliver(self):\n"
    "        pass\n"
    "class Net:\n"
    "    def step(self, nodes, fast):\n"
    "        active = set(range(len(nodes)))\n"
    "        if fast:\n"
    "            for idx in sorted(active):\n"
    "                node = nodes[idx]\n"
    "                node.deliver()\n"
    "                active.discard(idx)\n"
    "        else:\n"
    "            for node in nodes:\n"
    "                node.deliver()\n"
)


class TestS801FastOnlyState:
    def test_catches_fast_only_mutation(self):
        findings = check_source(_BUGGY, PARITY_RULES,
                                relpath="src/repro/core/network.py")
        assert _codes(findings) == ["S801"]
        assert "nodes.reset_window()" in findings[0].message
        assert "Net.step" in findings[0].message

    def test_clean_twin_with_bookkeeping_set_is_silent(self):
        findings = check_source(_CLEAN, PARITY_RULES,
                                relpath="src/repro/core/network.py")
        assert findings == []

    def test_alias_resolution_equates_indexed_and_iterated_access(self):
        # nodes[idx].deliver() on one side, for-loop alias on the other:
        # both must root at ``nodes`` and compare equal.
        findings = check_source(
            "class Node:\n"
            "    def deliver(self):\n"
            "        pass\n"
            "def step(nodes, active, fast):\n"
            "    if fast:\n"
            "        for idx in sorted(active):\n"
            "            nodes[idx].deliver()\n"
            "    else:\n"
            "        for node in nodes:\n"
            "            node.deliver()\n",
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert findings == []

    def test_suppression_documents_deliberate_asymmetry(self):
        suppressed = _BUGGY.replace(
            "                node.reset_window()\n",
            "                node.reset_window()  # lint: ignore[S801]\n",
        )
        findings = check_source(suppressed, PARITY_RULES,
                                relpath="src/repro/core/network.py")
        assert findings == []

    def test_not_fast_guard_counts_as_reference_side(self):
        findings = check_source(
            "class Node:\n"
            "    def deliver(self):\n"
            "        pass\n"
            "def step(nodes, fast):\n"
            "    if not fast:\n"
            "        for node in nodes:\n"
            "            node.deliver()\n",
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert _codes(findings) == ["S802"]

    def test_attribute_assignment_counts_as_state(self):
        findings = check_source(
            "def step(net, fast):\n"
            "    if fast:\n"
            "        net.epoch = net.epoch + 1\n"
            "    else:\n"
            "        pass\n",
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert _codes(findings) == ["S801"]
        assert "net.epoch =" in findings[0].message


class TestS802ReferenceOnlyState:
    def test_catches_reference_only_mutation(self):
        findings = check_source(
            "class Node:\n"
            "    def deliver(self):\n"
            "        pass\n"
            "    def flush(self):\n"
            "        pass\n"
            "def step(nodes, active, fast):\n"
            "    if fast:\n"
            "        for idx in sorted(active):\n"
            "            nodes[idx].deliver()\n"
            "    else:\n"
            "        for node in nodes:\n"
            "            node.deliver()\n"
            "            node.flush()\n",
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert _codes(findings) == ["S802"]
        assert "nodes.flush()" in findings[0].message


class TestDesignedExemptions:
    def test_observability_roots_are_exempt(self):
        findings = check_source(
            "def step(tracer, fast):\n"
            "    if fast:\n"
            "        tracer.record('fast')\n"
            "    else:\n"
            "        pass\n",
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert findings == []

    def test_reads_on_one_side_only_are_fine(self):
        # The fast path reading *less* state is its entire point;
        # only mutations participate in the parity diff.
        findings = check_source(
            "def step(rates, remaining, fast):\n"
            "    if fast:\n"
            "        best = min(rates, key=rates.get)\n"
            "    else:\n"
            "        best = None\n"
            "        for fid, rate in rates.items():\n"
            "            if best is None or rate < remaining[best]:\n"
            "                best = fid\n"
            "    return best\n",
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert findings == []

    def test_nested_closure_called_only_fast_side(self):
        # A rebuild helper invoked only under the fast guard is
        # fast-side code; the sets it maintains are bookkeeping.
        findings = check_source(
            "def run(nodes, fast):\n"
            "    active = set()\n"
            "    def rebuild():\n"
            "        active.clear()\n"
            "        for idx, node in enumerate(nodes):\n"
            "            active.add(idx)\n"
            "    if fast:\n"
            "        rebuild()\n"
            "    else:\n"
            "        pass\n",
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert findings == []

    def test_conjunction_guard_is_recognized(self):
        findings = check_source(
            "def step(net, announced, fast):\n"
            "    if announced and fast:\n"
            "        net.pending = 0\n"
            "    else:\n"
            "        pass\n",
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert _codes(findings) == ["S801"]


#: Two epoch loops (both profile deliver+transmit) with one label
#: vocabulary — the network.py / vectorized.py contract.
_LOOPS_ALIGNED = (
    "def run_reference(profiler):\n"
    "    profiler.lap('deliver')\n"
    "    profiler.lap('control')\n"
    "    profiler.lap('transmit')\n"
    "def run_vectorized(profiler):\n"
    "    profiler.lap('deliver')\n"
    "    profiler.lap('control')\n"
    "    profiler.lap('transmit')\n"
)

#: The second loop dropped the ``control`` phase its sibling profiles.
_LOOPS_DIVERGED = (
    "def run_reference(profiler):\n"
    "    profiler.lap('deliver')\n"
    "    profiler.lap('control')\n"
    "    profiler.lap('transmit')\n"
    "def run_vectorized(profiler):\n"
    "    profiler.lap('deliver')\n"
    "    profiler.lap('transmit')\n"
)


class TestS803BackendPhaseStructure:
    def test_aligned_loops_are_silent(self):
        findings = check_source(_LOOPS_ALIGNED, PARITY_RULES,
                                relpath="src/repro/core/network.py")
        assert findings == []

    def test_missing_phase_label_is_flagged(self):
        findings = check_source(_LOOPS_DIVERGED, PARITY_RULES,
                                relpath="src/repro/core/network.py")
        assert _codes(findings) == ["S803"]
        assert "run_vectorized" in findings[0].message
        assert "control" in findings[0].message

    def test_fluid_style_loop_is_not_an_epoch_loop(self):
        # The fluid simulator's advance/recompute loop never profiles
        # deliver/transmit; its distinct vocabulary must not count as a
        # divergence from the cell simulators.
        findings = check_source(
            _LOOPS_ALIGNED +
            "def run_fluid(profiler):\n"
            "    profiler.lap('setup')\n"
            "    profiler.lap('advance')\n"
            "    profiler.lap('recompute')\n",
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert findings == []

    def test_single_epoch_loop_has_no_siblings_to_diverge_from(self):
        findings = check_source(
            "def run(profiler):\n"
            "    profiler.lap('deliver')\n"
            "    profiler.lap('transmit')\n",
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert findings == []

    def test_dynamic_label_is_ignored(self):
        # Only literal labels define the vocabulary; a computed label
        # cannot be compared statically and must not flag its siblings.
        findings = check_source(
            _LOOPS_ALIGNED.replace("profiler.lap('control')\n"
                                   "    profiler.lap('transmit')\n"
                                   "def run_vectorized",
                                   "profiler.lap(name)\n"
                                   "    profiler.lap('control')\n"
                                   "    profiler.lap('transmit')\n"
                                   "def run_vectorized"),
            PARITY_RULES,
            relpath="src/repro/core/network.py",
        )
        assert findings == []
