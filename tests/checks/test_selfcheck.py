"""The gate itself: the configured tree must lint clean vs the baseline.

This is the tier-1 CI hook the ISSUE asks for — any new unit-literal,
nondeterminism, invariant or cross-module flow violation introduced into
``src/repro`` (or the linted ``benchmarks``/``examples`` trees) fails
the ordinary ``python -m pytest`` run, with the committed
``checks_baseline.json`` grandfathering accepted findings.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.checks import diff_against_baseline, load_baseline, run_checks
from repro.checks.baseline import DEFAULT_BASELINE_NAME
from repro.checks.cli import main
from repro.checks.registry import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
#: Every tree the committed baseline covers ([tool.repro.checks] paths).
LINT_PATHS = [SRC, REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]
BASELINE = REPO_ROOT / DEFAULT_BASELINE_NAME


def run_cli(*argv):
    """Run a lint subprocess with src/ importable regardless of install."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    return subprocess.run([sys.executable, *argv], capture_output=True,
                          text=True, cwd=REPO_ROOT, env=env)


class TestSelfCheck:
    def test_src_repro_clean_against_committed_baseline(self):
        findings = run_checks(LINT_PATHS, ALL_RULES, root=REPO_ROOT)
        baseline = load_baseline(BASELINE)
        new, stale = diff_against_baseline(findings, baseline)
        assert not new, "new lint findings:\n" + "\n".join(
            f.render() for f in new
        )
        assert not stale, (
            "stale baseline entries (regenerate checks_baseline.json):\n"
            + "\n".join(stale)
        )

    def test_full_repo_lint_stays_fast(self):
        # The flow analyses are whole-program; this guard keeps the
        # full-repo lint (src + benchmarks + examples, every rule
        # family) within an interactive budget.  Parsed ASTs are cached
        # between the per-file and project passes and function bodies
        # are walked once, so ~1.4x the typical cold runtime catches a
        # real complexity regression without flaking on a loaded CI box.
        import time

        start = time.perf_counter()
        run_checks(LINT_PATHS, ALL_RULES, root=REPO_ROOT)
        elapsed = time.perf_counter() - start
        assert elapsed < 4.0, (
            f"full-repo lint took {elapsed:.1f}s; the parse cache and "
            "shared analyses should keep it interactive (<4s)"
        )

    def test_state_families_clean_with_no_baseline_escape(self):
        # The sirius-state layer (M12xx snapshot-completeness, N13xx
        # protocol-conformance, W14xx backend state parity) must hold
        # the whole repo — including the test tree — at zero findings,
        # with deliberate narrowings annotated in source, not baselined.
        from repro.checks import filter_rules

        rules = filter_rules(ALL_RULES, select=["M12", "N13", "W14"])
        assert len(rules) == 9
        findings = run_checks([*LINT_PATHS, REPO_ROOT / "tests"], rules,
                              root=REPO_ROOT)
        assert findings == [], (
            "sirius-state findings:\n"
            + "\n".join(f.render() for f in findings)
        )

    def test_state_families_selectable_via_cli(self, capsys):
        # ``--select M12,N13,W14`` narrows the run; entries the
        # baseline holds for *other* families must not read as stale.
        argv = [str(path) for path in LINT_PATHS]
        exit_code = main(argv + ["--select", "M12,N13,W14"])
        out = capsys.readouterr().out
        assert exit_code == 0, out
        assert "stale" not in out

    def test_serve_tree_clean_for_concurrency_families(self):
        # The live service is the repo's only always-async surface; the
        # event-loop (B10xx), race (C9xx) and pickle (K11xx) families
        # must hold it to zero findings with no baseline escape hatch.
        from repro.checks import filter_rules

        rules = filter_rules(ALL_RULES, select=["B10", "C9", "K11"])
        findings = run_checks([SRC / "serve"], rules, root=REPO_ROOT)
        assert findings == [], (
            "concurrency findings in repro.serve:\n"
            + "\n".join(f.render() for f in findings)
        )

    def test_baseline_file_is_committed(self):
        assert BASELINE.is_file(), (
            f"{DEFAULT_BASELINE_NAME} must be committed at the repo root"
        )

    def test_cli_exits_zero_on_clean_tree(self, capsys):
        exit_code = main([str(path) for path in LINT_PATHS])
        capsys.readouterr()
        assert exit_code == 0

    def test_cli_defaults_to_configured_paths(self, capsys, monkeypatch):
        # With no positional paths the CLI lints [tool.repro.checks]
        # paths — src/repro plus benchmarks and examples.
        monkeypatch.chdir(REPO_ROOT)
        exit_code = main([])
        capsys.readouterr()
        assert exit_code == 0


class TestCliContract:
    def test_module_entry_point(self):
        result = run_cli("-m", "repro.checks",
                         *(str(path) for path in LINT_PATHS))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_json_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(t_s):\n    return t_s / 1e-6\n")
        result = run_cli("-m", "repro.checks", str(bad),
             "--no-baseline", "--format", "json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "U101"

    def test_sarif_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(t_s):\n    return t_s / 1e-6\n")
        result = run_cli("-m", "repro.checks", str(bad),
             "--no-baseline", "--format", "sarif")
        assert result.returncode == 1
        log = json.loads(result.stdout)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "sirius-lint"
        (sarif_result,) = log["runs"][0]["results"]
        assert sarif_result["ruleId"] == "U101"
        assert "siriusLint/v1" in sarif_result["partialFingerprints"]

    def test_select_family_prefix_with_digits(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "phy" / "jitter.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import random\n"
            "def jitter(t_s):\n"
            "    return random.random() * t_s / 1e-6\n"
        )
        result = run_cli("-m", "repro.checks", str(tmp_path),
             "--no-baseline", "--select", "T7", "--format", "json")
        payload = json.loads(result.stdout)
        assert [f["rule"] for f in payload["findings"]] == ["T702"]

    def test_select_limits_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "def f(t_s):\n"
            "    random.seed(0)\n"
            "    return t_s / 1e-6\n"
        )
        result = run_cli("-m", "repro.checks", str(bad),
             "--no-baseline", "--select", "D", "--format", "json")
        payload = json.loads(result.stdout)
        assert [f["rule"] for f in payload["findings"]] == ["D201"]

    def test_ignore_drops_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(t_s):\n    return t_s / 1e-6\n")
        result = run_cli("-m", "repro.checks", str(bad),
             "--no-baseline", "--ignore", "U101")
        assert result.returncode == 0

    def test_write_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(t_s):\n    return t_s / 1e-6\n")
        baseline = tmp_path / "baseline.json"
        wrote = run_cli("-m", "repro.checks", str(bad),
             "--baseline", str(baseline), "--write-baseline")
        assert wrote.returncode == 0 and baseline.is_file()
        rerun = run_cli("-m", "repro.checks", str(bad),
             "--baseline", str(baseline))
        assert rerun.returncode == 0, rerun.stdout + rerun.stderr

    def test_malformed_baseline_is_a_clean_usage_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(t_s):\n    return t_s / 1e-6\n")
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{broken")
        result = run_cli("-m", "repro.checks", str(bad),
             "--baseline", str(corrupt))
        assert result.returncode == 2
        assert "malformed baseline" in result.stderr
        assert "Traceback" not in result.stderr

    def test_unparseable_file_is_a_finding_not_clean(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        result = run_cli("-m", "repro.checks", str(broken), "--no-baseline")
        assert result.returncode == 1
        assert "E001" in result.stdout

    def test_list_rules(self):
        result = run_cli("-m", "repro.checks", "--list-rules")
        assert result.returncode == 0
        for code in ("U101", "U102", "U103", "D201", "D202", "D203",
                     "I301", "I302", "I303"):
            assert code in result.stdout

    def test_repro_cli_lint_subcommand_forwards(self):
        result = run_cli("-m", "repro.cli", "lint",
                         *(str(path) for path in LINT_PATHS))
        assert result.returncode == 0, result.stdout + result.stderr


class TestStatsAndSarifOut:
    def test_stats_flag_reports_families_and_passes(self):
        result = run_cli("-m", "repro.checks",
                         *(str(path) for path in LINT_PATHS), "--stats")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "lint stats:" in result.stderr
        assert "files parsed" in result.stderr
        assert "project rule pass" in result.stderr
        # Stats go to stderr so every --format stays parseable.
        assert "lint stats:" not in result.stdout

    def test_sarif_out_writes_artifact(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(t_s):\n    return t_s / 1e-6\n")
        artifact = tmp_path / "out" / "lint.sarif"
        result = run_cli("-m", "repro.checks", str(bad), "--no-baseline",
                         "--sarif-out", str(artifact))
        assert result.returncode == 1
        log = json.loads(artifact.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        (sarif_result,) = log["runs"][0]["results"]
        assert sarif_result["ruleId"] == "U101"
        # The text report still goes to stdout alongside the artifact.
        assert "U101" in result.stdout

    def test_sarif_out_on_clean_tree_is_empty_log(self, tmp_path):
        artifact = tmp_path / "lint.sarif"
        result = run_cli("-m", "repro.checks",
                         *(str(path) for path in LINT_PATHS),
                         "--sarif-out", str(artifact))
        assert result.returncode == 0
        log = json.loads(artifact.read_text(encoding="utf-8"))
        assert log["runs"][0]["results"] == []

    def test_stats_json_writes_artifact(self, tmp_path):
        out = tmp_path / "stats" / "lint-stats.json"
        result = run_cli("-m", "repro.checks",
                         *(str(path) for path in LINT_PATHS),
                         "--stats-json", str(out))
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["files"] > 0
        assert payload["passes_s"]["total"] > 0
        assert payload["passes_s"]["project_rules"] >= 0
        # Every family is charged wall time even at zero findings —
        # proof the fourth (sirius-state) layer actually ran.
        for family in ("U1", "M12", "N13", "W14"):
            assert family in payload["families"], sorted(payload["families"])
            assert payload["families"][family]["rule_s"] >= 0

    def test_concurrency_families_selectable(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "perf" / "driver.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "from multiprocessing import Pool\n"
            "def sweep(jobs):\n"
            "    with Pool() as pool:\n"
            "        return pool.map(lambda j: j, jobs)\n"
        )
        result = run_cli("-m", "repro.checks", str(tmp_path),
                         "--no-baseline", "--select", "C9,B10,K11",
                         "--format", "json")
        payload = json.loads(result.stdout)
        assert [f["rule"] for f in payload["findings"]] == ["K1102"]
