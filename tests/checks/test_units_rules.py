"""Unit-dimension rule family: good/bad fixture pairs per rule."""

import textwrap

from repro.checks import check_source
from repro.checks.units_rules import UNITS_RULES, dimension_of


def lint(source):
    return check_source(textwrap.dedent(source), UNITS_RULES)


def codes(source):
    return [f.rule for f in lint(source)]


class TestUnitLiteral:
    """U101 — raw power-of-ten literals."""

    def test_bad_division_conversion(self):
        assert codes("""\
        def report(duration_s):
            return duration_s / 1e-6
        """) == ["U101"]

    def test_bad_mantissa_literal_in_arithmetic(self):
        assert codes("""\
        def capacity(n):
            return n * 50e9
        """) == ["U101"]

    def test_bad_keyword_with_dimension_suffix(self):
        assert codes("""\
        def build(make):
            return make(base_rtt_s=2e-6)
        """) == ["U101"]

    def test_bad_default_with_dimension_suffix(self):
        assert codes("""\
        def probe(timestamp_noise_s=2e-12):
            return timestamp_noise_s
        """) == ["U101"]

    def test_bad_annotated_assignment(self):
        assert codes("""\
        control_link_bps: float = 100e9
        """) == ["U101"]

    def test_good_units_constant(self):
        assert codes("""\
        from repro.units import US

        def report(duration_s):
            return duration_s / US
        """) == []

    def test_good_comparison_tolerance_not_flagged(self):
        assert codes("""\
        def close(a, b):
            return abs(a - b) < 1e-9
        """) == []

    def test_good_call_argument_epsilon_not_flagged(self):
        assert codes("""\
        def floor(ber):
            return max(ber, 1e-300)
        """) == []

    def test_good_plain_decimal_not_flagged(self):
        assert codes("""\
        def scale(x):
            return x * 1000.0
        """) == []

    def test_suggestion_uses_dimension_suffix(self):
        (finding,) = lint("""\
        def report(duration_s):
            return duration_s / 1e-6
        """)
        assert "US" in finding.message


class TestDbLinearMix:
    """U102 — decibel/linear power mixing."""

    def test_bad_add(self):
        assert codes("""\
        def total(gain_db, power_mw):
            return gain_db + power_mw
        """) == ["U102"]

    def test_bad_sub_with_attributes(self):
        assert codes("""\
        def margin(link):
            return link.budget_dbm - link.noise_w
        """) == ["U102"]

    def test_good_db_plus_db(self):
        assert codes("""\
        def total(gain_db, loss_db):
            return gain_db + loss_db
        """) == []

    def test_good_converted_first(self):
        assert codes("""\
        from repro.units import dbm_to_mw

        def total(gain_dbm, power_mw):
            return dbm_to_mw(gain_dbm) + power_mw
        """) == []


class TestDimensionMismatch:
    """U103 — cross-dimension arithmetic and comparisons."""

    def test_bad_time_plus_data(self):
        assert codes("""\
        def wat(duration_s, size_bits):
            return duration_s + size_bits
        """) == ["U103"]

    def test_bad_comparison(self):
        assert codes("""\
        def wat(deadline_s, size_bytes):
            return deadline_s < size_bytes
        """) == ["U103"]

    def test_good_division_changes_dimension(self):
        assert codes("""\
        def serialize(size_bits, rate_bps):
            return size_bits / rate_bps
        """) == []

    def test_good_same_dimension(self):
        assert codes("""\
        def slack(slot_s, guard_s):
            return slot_s - guard_s
        """) == []

    def test_good_unknown_side_is_silent(self):
        assert codes("""\
        def mystery(duration_s, x):
            return duration_s + x
        """) == []

    def test_db_power_pair_left_to_u102(self):
        findings = lint("""\
        def total(gain_db, power_mw):
            return gain_db + power_mw
        """)
        assert [f.rule for f in findings] == ["U102"]


class TestDimensionOf:
    def test_known_suffixes(self):
        assert dimension_of("duration_s") == "time"
        assert dimension_of("size_bits") == "data"
        assert dimension_of("link_rate_bps") == "rate"
        assert dimension_of("power_mw") == "power"
        assert dimension_of("budget_dbm") == "level"
        assert dimension_of("span_m") == "length"

    def test_unknown(self):
        assert dimension_of("load") is None
        assert dimension_of("queue_threshold") is None
        assert dimension_of(None) is None
