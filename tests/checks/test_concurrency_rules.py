"""Fixture tests for the concurrency analysis layer.

One true positive and one clean exemplar per rule — ``C9xx``
race/fork-safety, ``B10xx`` async-blocking, ``K11xx`` pickle-safety —
plus suppression-placement tests for the cross-file findings.
"""

from repro.checks.concurrency import (
    ASYNC_RULES,
    CONCURRENCY_RULES,
    PICKLE_RULES,
    RACE_RULES,
)
from repro.checks.engine import check_project_source, check_source


def _codes(findings):
    return [f.rule for f in findings]


def _only(findings, code):
    return [f for f in findings if f.rule == code]


# ---------------------------------------------------------------------------
# C901 worker-writes-shared-state
# ---------------------------------------------------------------------------
class TestC901WorkerWritesSharedState:
    FILES = {
        "src/repro/perf/cache.py": (
            "RESULTS = {}\n"
            "\n"
            "def record(key, value):\n"
            "    RESULTS[key] = value\n"
            "\n"
            "def summarize():\n"
            "    return dict(RESULTS)\n"
        ),
        "src/repro/perf/driver.py": (
            "from multiprocessing import Pool\n"
            "from repro.perf.cache import record\n"
            "\n"
            "def worker(job):\n"
            "    record(job, job * 2)\n"
            "    return job\n"
            "\n"
            "def sweep(jobs):\n"
            "    with Pool() as pool:\n"
            "        return pool.map(worker, jobs)\n"
        ),
    }

    def test_catches_worker_write_visible_to_parent(self):
        findings = check_project_source(self.FILES, RACE_RULES)
        c901 = _only(findings, "C901")
        assert c901, _codes(findings)
        # Anchored at the mutation site, in the file that owns the state.
        assert c901[0].path == "src/repro/perf/cache.py"
        assert c901[0].line == 4
        assert "RESULTS" in c901[0].message
        assert "worker -> record" in c901[0].message
        assert "summarize" in c901[0].message

    def test_clean_twin_result_through_return_value(self):
        findings = check_project_source({
            "src/repro/perf/driver.py": (
                "from multiprocessing import Pool\n"
                "\n"
                "def worker(job):\n"
                "    return (job, job * 2)\n"
                "\n"
                "def sweep(jobs):\n"
                "    with Pool() as pool:\n"
                "        return dict(pool.map(worker, jobs))\n"
            ),
        }, RACE_RULES)
        assert findings == []

    def test_worker_only_state_is_not_c901(self):
        # Mutation with no parent-side user: not a lost-update hazard.
        findings = check_project_source({
            "src/repro/perf/driver.py": (
                "from multiprocessing import Pool\n"
                "SCRATCH = {}\n"
                "\n"
                "def worker(job):\n"
                "    SCRATCH[job] = True\n"
                "    return job\n"
                "\n"
                "def sweep(jobs):\n"
                "    with Pool() as pool:\n"
                "        return pool.map(worker, jobs)\n"
            ),
        }, [rule for rule in RACE_RULES if rule.code == "C901"])
        assert findings == []

    def test_suppression_at_mutation_site(self):
        files = dict(self.FILES)
        files["src/repro/perf/cache.py"] = (
            "RESULTS = {}\n"
            "\n"
            "def record(key, value):\n"
            "    RESULTS[key] = value  # lint: ignore[C901]\n"
            "\n"
            "def summarize():\n"
            "    return dict(RESULTS)\n"
        )
        findings = check_project_source(files, RACE_RULES)
        assert _only(findings, "C901") == []

    def test_suppression_in_spawning_file_does_not_apply(self):
        # The finding anchors at the mutation (source file); a comment
        # at the pool.map call site must NOT silence it.
        files = dict(self.FILES)
        files["src/repro/perf/driver.py"] = files[
            "src/repro/perf/driver.py"].replace(
            "return pool.map(worker, jobs)",
            "return pool.map(worker, jobs)  # lint: ignore[C901]")
        findings = check_project_source(files, RACE_RULES)
        assert _only(findings, "C901"), _codes(findings)


# ---------------------------------------------------------------------------
# C902 fork-inherited-state
# ---------------------------------------------------------------------------
class TestC902ForkInheritedState:
    def test_catches_module_level_rng_in_worker(self):
        findings = check_source(
            "import random\n"
            "from multiprocessing import Pool\n"
            "\n"
            "RNG = random.Random(7)\n"
            "\n"
            "def worker(job):\n"
            "    return RNG.random() * job\n"
            "\n"
            "def sweep(jobs):\n"
            "    with Pool() as pool:\n"
            "        return pool.map(worker, jobs)\n",
            RACE_RULES, relpath="src/repro/perf/driver.py",
        )
        c902 = _only(findings, "C902")
        assert c902, _codes(findings)
        assert c902[0].line == 7
        assert "RNG" in c902[0].message
        assert "stream" in c902[0].message

    def test_catches_obs_registry_in_worker(self):
        findings = check_source(
            "from multiprocessing import Pool\n"
            "from repro.obs import MetricsRegistry\n"
            "\n"
            "METRICS = MetricsRegistry()\n"
            "\n"
            "def worker(job):\n"
            "    METRICS.counter('jobs').increment()\n"
            "    return job\n"
            "\n"
            "def sweep(jobs):\n"
            "    with Pool() as pool:\n"
            "        return pool.map(worker, jobs)\n",
            RACE_RULES, relpath="src/repro/perf/driver.py",
        )
        c902 = _only(findings, "C902")
        assert c902, _codes(findings)
        assert "recorder" in c902[0].message

    def test_catches_parent_mutated_cache_read_in_worker(self):
        findings = check_source(
            "from multiprocessing import Pool\n"
            "\n"
            "CAPACITY = {}\n"
            "\n"
            "def warm(n):\n"
            "    CAPACITY[n] = n * 2\n"
            "\n"
            "def worker(job):\n"
            "    return CAPACITY.get(job, 0)\n"
            "\n"
            "def sweep(jobs):\n"
            "    warm(64)\n"
            "    with Pool() as pool:\n"
            "        return pool.map(worker, jobs)\n",
            [rule for rule in RACE_RULES if rule.code == "C902"],
            relpath="src/repro/perf/driver.py",
        )
        c902 = _only(findings, "C902")
        assert c902, _codes(findings)
        assert "snapshot" in c902[0].message

    def test_clean_twin_seed_threaded_through_job(self):
        findings = check_source(
            "import random\n"
            "from multiprocessing import Pool\n"
            "\n"
            "def worker(job):\n"
            "    rng = random.Random(job)\n"
            "    return rng.random()\n"
            "\n"
            "def sweep(jobs):\n"
            "    with Pool() as pool:\n"
            "        return pool.map(worker, jobs)\n",
            RACE_RULES, relpath="src/repro/perf/driver.py",
        )
        assert findings == []

    def test_null_sentinels_are_exempt(self):
        findings = check_source(
            "from multiprocessing import Pool\n"
            "from repro.obs import NullRegistry\n"
            "\n"
            "NULL_METRICS = NullRegistry()\n"
            "\n"
            "def worker(job):\n"
            "    NULL_METRICS.counter('jobs')\n"
            "    return job\n"
            "\n"
            "def sweep(jobs):\n"
            "    with Pool() as pool:\n"
            "        return pool.map(worker, jobs)\n",
            RACE_RULES, relpath="src/repro/perf/driver.py",
        )
        assert _only(findings, "C902") == []


# ---------------------------------------------------------------------------
# C903 lock-discipline
# ---------------------------------------------------------------------------
class TestC903LockDiscipline:
    def test_catches_bare_acquire(self):
        findings = check_source(
            "def critical(lock, work):\n"
            "    lock.acquire()\n"
            "    work()\n"
            "    lock.release()\n",
            RACE_RULES, relpath="src/repro/service/state.py",
        )
        c903 = _only(findings, "C903")
        assert c903, _codes(findings)
        assert c903[0].line == 2

    def test_catches_with_acquire_misuse(self):
        findings = check_source(
            "def critical(lock, work):\n"
            "    with lock.acquire():\n"
            "        work()\n",
            RACE_RULES, relpath="src/repro/service/state.py",
        )
        c903 = _only(findings, "C903")
        assert c903, _codes(findings)
        assert "with lock:" in c903[0].message

    def test_catches_release_on_different_lock(self):
        findings = check_source(
            "def critical(a, b, work):\n"
            "    a.acquire()\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        b.release()\n",
            RACE_RULES, relpath="src/repro/service/state.py",
        )
        assert _only(findings, "C903"), _codes(findings)

    def test_clean_twin_with_statement(self):
        findings = check_source(
            "def critical(lock, work):\n"
            "    with lock:\n"
            "        work()\n",
            RACE_RULES, relpath="src/repro/service/state.py",
        )
        assert findings == []

    def test_clean_twin_try_finally(self):
        findings = check_source(
            "def critical(lock, work):\n"
            "    lock.acquire()\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        lock.release()\n",
            RACE_RULES, relpath="src/repro/service/state.py",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# B1001 blocking-call-in-async
# ---------------------------------------------------------------------------
class TestB1001BlockingCallInAsync:
    def test_catches_time_sleep_directly_in_coroutine(self):
        findings = check_source(
            "import time\n"
            "\n"
            "async def handler(request):\n"
            "    time.sleep(0.1)\n"
            "    return request\n",
            ASYNC_RULES, relpath="src/repro/service/api.py",
        )
        b1001 = _only(findings, "B1001")
        assert b1001, _codes(findings)
        assert b1001[0].line == 4
        assert "time.sleep()" in b1001[0].message
        assert "directly" in b1001[0].message

    def test_catches_file_io_on_sync_call_path(self):
        findings = check_source(
            "def load_config(path):\n"
            "    return open(path).read()\n"
            "\n"
            "async def handler(request):\n"
            "    return load_config(request)\n",
            ASYNC_RULES, relpath="src/repro/service/api.py",
        )
        b1001 = _only(findings, "B1001")
        assert b1001, _codes(findings)
        # Anchored at the blocking call, chain from the async root.
        assert b1001[0].line == 2
        assert "handler -> load_config" in b1001[0].message

    def test_clean_twin_offloaded_to_executor(self):
        # The same blocking helper behind run_in_executor crosses an
        # executor boundary edge and does not block the loop.
        findings = check_source(
            "import asyncio\n"
            "\n"
            "def load_config(path):\n"
            "    return open(path).read()\n"
            "\n"
            "async def handler(request):\n"
            "    loop = asyncio.get_running_loop()\n"
            "    return await loop.run_in_executor(None, load_config, "
            "request)\n",
            ASYNC_RULES, relpath="src/repro/service/api.py",
        )
        assert _only(findings, "B1001") == []

    def test_clean_twin_asyncio_to_thread(self):
        findings = check_source(
            "import asyncio\n"
            "import time\n"
            "\n"
            "def pause():\n"
            "    time.sleep(1.0)\n"
            "\n"
            "async def handler(request):\n"
            "    await asyncio.to_thread(pause)\n"
            "    return request\n",
            ASYNC_RULES, relpath="src/repro/service/api.py",
        )
        assert _only(findings, "B1001") == []

    def test_blocking_call_outside_async_is_silent(self):
        findings = check_source(
            "import time\n"
            "\n"
            "def bench():\n"
            "    time.sleep(0.1)\n",
            ASYNC_RULES, relpath="src/repro/perf/bench.py",
        )
        assert findings == []

    def test_catches_dns_resolution_in_coroutine(self):
        # socket.getaddrinfo is synchronous DNS — seconds of stall on a
        # slow resolver, invisible in tests against 127.0.0.1.
        findings = check_source(
            "import socket\n"
            "\n"
            "async def connect(host):\n"
            "    return socket.getaddrinfo(host, 80)\n",
            ASYNC_RULES, relpath="src/repro/service/api.py",
        )
        b1001 = _only(findings, "B1001")
        assert b1001, _codes(findings)
        assert "socket.getaddrinfo()" in b1001[0].message

    def test_clean_twin_loop_getaddrinfo(self):
        findings = check_source(
            "import asyncio\n"
            "\n"
            "async def connect(host):\n"
            "    loop = asyncio.get_running_loop()\n"
            "    return await loop.getaddrinfo(host, 80)\n",
            ASYNC_RULES, relpath="src/repro/service/api.py",
        )
        assert _only(findings, "B1001") == []


# ---------------------------------------------------------------------------
# B1002 sim-run-in-async
# ---------------------------------------------------------------------------
class TestB1002SimRunInAsync:
    SWEEP = (
        "class ParallelSweepRunner:\n"
        "    def map(self, fn, jobs):\n"
        "        return [fn(job) for job in jobs]\n"
        "\n"
        "def run_sirius_job(job):\n"
        "    return job\n"
    )

    def test_catches_sweep_run_inside_coroutine(self):
        findings = check_project_source({
            "src/repro/service/api.py": (
                "from repro.perf.sweep import ParallelSweepRunner, "
                "run_sirius_job\n"
                "\n"
                "async def sweep_endpoint(jobs):\n"
                "    runner = ParallelSweepRunner()\n"
                "    return runner.map(run_sirius_job, jobs)\n"
            ),
            "src/repro/perf/sweep.py": self.SWEEP,
        }, ASYNC_RULES)
        b1002 = _only(findings, "B1002")
        assert b1002, _codes(findings)
        assert b1002[0].path == "src/repro/service/api.py"
        assert "ParallelSweepRunner.map" in b1002[0].message
        assert "run_in_executor" in b1002[0].message

    def test_clean_twin_sweep_offloaded(self):
        findings = check_project_source({
            "src/repro/service/api.py": (
                "import asyncio\n"
                "from repro.perf.sweep import ParallelSweepRunner, "
                "run_sirius_job\n"
                "\n"
                "def run_sweep(jobs):\n"
                "    runner = ParallelSweepRunner()\n"
                "    return runner.map(run_sirius_job, jobs)\n"
                "\n"
                "async def sweep_endpoint(jobs):\n"
                "    loop = asyncio.get_running_loop()\n"
                "    return await loop.run_in_executor(None, run_sweep, "
                "jobs)\n"
            ),
            "src/repro/perf/sweep.py": self.SWEEP,
        }, [rule for rule in ASYNC_RULES if rule.code == "B1002"])
        assert findings == []

    STREAMING_SWEEP = (
        "class ParallelSweepRunner:\n"
        "    def map_stream(self, fn, jobs, on_result=None):\n"
        "        for index, job in enumerate(jobs):\n"
        "            yield index, fn(job)\n"
        "\n"
        "def run_sirius_job(job):\n"
        "    return job\n"
    )

    def test_catches_map_stream_inside_coroutine(self):
        # The streaming variant is the same epoch-loop CPU as map();
        # draining its iterator inline stalls the loop identically.
        findings = check_project_source({
            "src/repro/service/api.py": (
                "from repro.perf.sweep import ParallelSweepRunner, "
                "run_sirius_job\n"
                "\n"
                "async def sweep_endpoint(jobs):\n"
                "    runner = ParallelSweepRunner()\n"
                "    return list(runner.map_stream(run_sirius_job, jobs))\n"
            ),
            "src/repro/perf/sweep.py": self.STREAMING_SWEEP,
        }, ASYNC_RULES)
        b1002 = _only(findings, "B1002")
        assert b1002, _codes(findings)
        assert "ParallelSweepRunner.map_stream" in b1002[0].message

    def test_clean_twin_map_stream_offloaded(self):
        findings = check_project_source({
            "src/repro/service/api.py": (
                "import asyncio\n"
                "from repro.perf.sweep import ParallelSweepRunner, "
                "run_sirius_job\n"
                "\n"
                "def run_sweep(jobs):\n"
                "    runner = ParallelSweepRunner()\n"
                "    return list(runner.map_stream(run_sirius_job, jobs))\n"
                "\n"
                "async def sweep_endpoint(jobs):\n"
                "    loop = asyncio.get_running_loop()\n"
                "    return await loop.run_in_executor(None, run_sweep, "
                "jobs)\n"
            ),
            "src/repro/perf/sweep.py": self.STREAMING_SWEEP,
        }, [rule for rule in ASYNC_RULES if rule.code == "B1002"])
        assert findings == []


# ---------------------------------------------------------------------------
# super() dispatch precision (shared call-graph layer)
# ---------------------------------------------------------------------------
class TestSuperDispatchPrecision:
    """``super().m()`` resolves along the base chain, never name-wide.

    Before this fix, ``super().__init__`` inside any exception class
    fanned out to every ``__init__`` in the project, so raising a custom
    error from a coroutine connected the async root to unrelated heavy
    code and produced phantom B1002 findings.
    """

    SIM = (
        "class SiriusNetwork:\n"
        "    def run(self, flows):\n"
        "        return flows\n"
    )

    def test_exception_super_init_does_not_reach_sims(self):
        findings = check_project_source({
            "src/repro/core/network.py": self.SIM,
            "src/repro/service/errors.py": (
                "class SpecError(ValueError):\n"
                "    def __init__(self, status, reason):\n"
                "        super().__init__(reason)\n"
                "        self.status = status\n"
            ),
            "src/repro/service/api.py": (
                "from repro.service.errors import SpecError\n"
                "\n"
                "async def handler(request):\n"
                "    if not request:\n"
                "        raise SpecError(400, 'empty request')\n"
                "    return request\n"
            ),
        }, ASYNC_RULES)
        assert findings == [], _codes(findings)

    def test_super_to_project_base_still_followed(self):
        # When the base IS project code that runs a simulation, the
        # super() edge must survive the precision fix.
        findings = check_project_source({
            "src/repro/core/network.py": self.SIM,
            "src/repro/service/api.py": (
                "from repro.core.network import SiriusNetwork\n"
                "\n"
                "class Base:\n"
                "    def start(self, flows):\n"
                "        net = SiriusNetwork()\n"
                "        return net.run(flows)\n"
                "\n"
                "class Handler(Base):\n"
                "    def start(self, flows):\n"
                "        return super().start(flows)\n"
                "\n"
                "async def endpoint(flows):\n"
                "    return Handler().start(flows)\n"
            ),
        }, ASYNC_RULES)
        b1002 = _only(findings, "B1002")
        assert b1002, _codes(findings)
        assert "SiriusNetwork.run" in b1002[0].message


# ---------------------------------------------------------------------------
# K1101 unpicklable-job-field
# ---------------------------------------------------------------------------
class TestK1101UnpicklableJobField:
    def test_catches_callable_lock_and_lambda_fields(self):
        findings = check_project_source({
            "src/repro/perf/jobs.py": (
                "import threading\n"
                "from dataclasses import dataclass, field\n"
                "from typing import Callable\n"
                "\n"
                "@dataclass(frozen=True)\n"
                "class BadJob:\n"
                "    n_nodes: int\n"
                "    make_net: Callable[[int], object]\n"
                "    lock: threading.Lock = None\n"
                "    on_done: object = field(default=lambda: None)\n"
                "\n"
                "def run_bad(job: BadJob):\n"
                "    return job.n_nodes\n"
            ),
            "src/repro/perf/driver.py": (
                "from multiprocessing import Pool\n"
                "from repro.perf.jobs import run_bad\n"
                "\n"
                "def sweep(jobs):\n"
                "    with Pool() as pool:\n"
                "        return pool.map(run_bad, jobs)\n"
            ),
        }, PICKLE_RULES)
        k1101 = _only(findings, "K1101")
        fields_flagged = {f.message.split("'")[1] for f in k1101}
        assert fields_flagged == {"make_net", "lock", "on_done"}
        # Anchored in the file that declares the class.
        assert all(f.path == "src/repro/perf/jobs.py" for f in k1101)
        assert any("run_bad" in f.message for f in k1101)

    def test_recurses_through_nested_dataclasses(self):
        findings = check_project_source({
            "src/repro/perf/jobs.py": (
                "from dataclasses import dataclass\n"
                "from typing import Callable, Optional\n"
                "\n"
                "@dataclass(frozen=True)\n"
                "class NetSpec:\n"
                "    builder: Optional[Callable[[], object]] = None\n"
                "\n"
                "@dataclass(frozen=True)\n"
                "class Job:\n"
                "    spec: NetSpec\n"
                "\n"
                "def run_job(job: Job):\n"
                "    return job\n"
            ),
            "src/repro/perf/driver.py": (
                "from multiprocessing import Pool\n"
                "from repro.perf.jobs import run_job\n"
                "\n"
                "def sweep(jobs):\n"
                "    with Pool() as pool:\n"
                "        return pool.map(run_job, jobs)\n"
            ),
        }, PICKLE_RULES)
        k1101 = _only(findings, "K1101")
        assert k1101, _codes(findings)
        assert "builder" in k1101[0].message

    def test_checkpoint_classes_are_roots_without_a_pool(self):
        findings = check_source(
            "from dataclasses import dataclass\n"
            "from typing import Iterator\n"
            "\n"
            "@dataclass\n"
            "class SweepCheckpoint:\n"
            "    cursor: Iterator\n",
            PICKLE_RULES, relpath="src/repro/perf/checkpoint.py",
        )
        k1101 = _only(findings, "K1101")
        assert k1101, _codes(findings)
        assert "cursor" in k1101[0].message

    def test_clean_twin_scalar_job_is_silent(self):
        findings = check_project_source({
            "src/repro/perf/jobs.py": (
                "from dataclasses import dataclass\n"
                "from typing import Optional\n"
                "\n"
                "@dataclass(frozen=True)\n"
                "class GoodJob:\n"
                "    n_nodes: int\n"
                "    load: float\n"
                "    backend: Optional[str] = None\n"
                "    label: str = ''\n"
                "\n"
                "def run_good(job: GoodJob):\n"
                "    return job.n_nodes\n"
            ),
            "src/repro/perf/driver.py": (
                "from multiprocessing import Pool\n"
                "from repro.perf.jobs import run_good\n"
                "\n"
                "def sweep(jobs):\n"
                "    with Pool() as pool:\n"
                "        return pool.map(run_good, jobs)\n"
            ),
        }, PICKLE_RULES)
        assert findings == []

    def test_suppression_at_field_not_at_pool_call(self):
        files = {
            "src/repro/perf/jobs.py": (
                "from dataclasses import dataclass\n"
                "from typing import Callable\n"
                "\n"
                "@dataclass(frozen=True)\n"
                "class Job:\n"
                "    # lint: ignore[K1101]\n"
                "    make_net: Callable[[], object]\n"
                "\n"
                "def run_job(job: Job):\n"
                "    return job\n"
            ),
            "src/repro/perf/driver.py": (
                "from multiprocessing import Pool\n"
                "from repro.perf.jobs import run_job\n"
                "\n"
                "def sweep(jobs):\n"
                "    with Pool() as pool:\n"
                "        return pool.map(run_job, jobs)\n"
            ),
        }
        assert _only(check_project_source(files, PICKLE_RULES),
                     "K1101") == []
        # A comment at the pool.map sink must not silence the field.
        files["src/repro/perf/jobs.py"] = files[
            "src/repro/perf/jobs.py"].replace(
            "    # lint: ignore[K1101]\n", "")
        files["src/repro/perf/driver.py"] = files[
            "src/repro/perf/driver.py"].replace(
            "return pool.map(run_job, jobs)",
            "return pool.map(run_job, jobs)  # lint: ignore[K1101]")
        assert _only(check_project_source(files, PICKLE_RULES), "K1101")


# ---------------------------------------------------------------------------
# K1102 unpicklable-callable-to-pool
# ---------------------------------------------------------------------------
class TestK1102UnpicklableCallableToPool:
    def test_catches_lambda_to_pool_map(self):
        findings = check_source(
            "from multiprocessing import Pool\n"
            "\n"
            "def sweep(jobs):\n"
            "    with Pool() as pool:\n"
            "        return pool.map(lambda job: job * 2, jobs)\n",
            PICKLE_RULES, relpath="src/repro/perf/driver.py",
        )
        k1102 = _only(findings, "K1102")
        assert k1102, _codes(findings)
        assert "lambda" in k1102[0].message

    def test_catches_nested_function_to_pool(self):
        findings = check_source(
            "from multiprocessing import Pool\n"
            "\n"
            "def sweep(jobs, scale):\n"
            "    def worker(job):\n"
            "        return job * scale\n"
            "    with Pool() as pool:\n"
            "        return pool.map(worker, jobs)\n",
            PICKLE_RULES, relpath="src/repro/perf/driver.py",
        )
        k1102 = _only(findings, "K1102")
        assert k1102, _codes(findings)
        assert "sweep.worker" in k1102[0].message
        assert "module level" in k1102[0].message

    def test_catches_nested_target_to_process(self):
        findings = check_source(
            "import multiprocessing\n"
            "\n"
            "def launch(value):\n"
            "    def job():\n"
            "        return value\n"
            "    proc = multiprocessing.Process(target=job)\n"
            "    proc.start()\n",
            PICKLE_RULES, relpath="src/repro/perf/driver.py",
        )
        assert _only(findings, "K1102"), _codes(findings)

    def test_clean_twin_module_level_worker(self):
        findings = check_source(
            "from multiprocessing import Pool\n"
            "\n"
            "def worker(job):\n"
            "    return job * 2\n"
            "\n"
            "def sweep(jobs):\n"
            "    with Pool() as pool:\n"
            "        return pool.map(worker, jobs)\n",
            PICKLE_RULES, relpath="src/repro/perf/driver.py",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# The combined family list
# ---------------------------------------------------------------------------
class TestCombinedFamilies:
    def test_registry_exposes_all_seven_rules(self):
        codes = {rule.code for rule in CONCURRENCY_RULES}
        assert codes == {"C901", "C902", "C903", "B1001", "B1002",
                         "K1101", "K1102"}

    def test_all_rules_have_distinct_names(self):
        names = [rule.name for rule in CONCURRENCY_RULES]
        assert len(names) == len(set(names))

    def test_registered_in_global_registry(self):
        from repro.checks.registry import ALL_RULES

        registered = {rule.code for rule in ALL_RULES}
        for rule in CONCURRENCY_RULES:
            assert rule.code in registered
