"""Determinism rule family: good/bad fixture pairs per rule."""

import textwrap

from repro.checks import check_source
from repro.checks.determinism_rules import DETERMINISM_RULES


def lint(source):
    return check_source(textwrap.dedent(source), DETERMINISM_RULES)


def codes(source):
    return [f.rule for f in lint(source)]


class TestGlobalRng:
    """D201 — module-level random.*/np.random.* draws."""

    def test_bad_module_level_random(self):
        assert codes("""\
        import random

        def jitter():
            return random.random()
        """) == ["D201"]

    def test_bad_aliased_import(self):
        assert codes("""\
        import random as rnd

        def pick(items):
            return rnd.choice(items)
        """) == ["D201"]

    def test_bad_numpy_global(self):
        assert codes("""\
        import numpy as np

        def noise(n):
            return np.random.normal(size=n)
        """) == ["D201"]

    def test_bad_global_seed_call(self):
        assert codes("""\
        import random

        random.seed(0)
        """) == ["D201"]

    def test_bad_numpy_exotic_distribution(self):
        # The lint covers the whole legacy sampling surface, not just
        # the common draws.
        assert codes("""\
        import numpy as np

        def sizes(n):
            return np.random.zipf(2.0, size=n)
        """) == ["D201"]

    def test_bad_numpy_state_poke(self):
        assert codes("""\
        import numpy as np

        def rewind(state):
            np.random.set_state(state)
        """) == ["D201"]

    def test_good_injected_rng(self):
        assert codes("""\
        import random

        def jitter(rng: random.Random):
            return rng.random()
        """) == []

    def test_good_unrelated_module_attribute(self):
        assert codes("""\
        import math

        def jitter():
            return math.sin(1.0)
        """) == []

    def test_good_local_name_shadowing_without_import(self):
        # No `import random` in the file: `random.x()` is someone
        # else's object, not the stdlib global.
        assert codes("""\
        def jitter(random):
            return random.random()
        """) == []


class TestUnseededRng:
    """D202 — RNG constructed without a seed."""

    def test_bad_unseeded_random(self):
        assert codes("""\
        import random

        rng = random.Random()
        """) == ["D202"]

    def test_bad_unseeded_default_rng(self):
        assert codes("""\
        import numpy as np

        rng = np.random.default_rng()
        """) == ["D202"]

    def test_bad_system_random_even_with_args(self):
        assert codes("""\
        import random

        rng = random.SystemRandom()
        """) == ["D202"]

    def test_bad_unseeded_random_state(self):
        assert codes("""\
        import numpy as np

        rng = np.random.RandomState()
        """) == ["D202"]

    def test_bad_imported_random_state(self):
        assert codes("""\
        from numpy.random import RandomState

        rng = RandomState()
        """) == ["D202"]

    def test_bad_none_seed_is_unseeded(self):
        # A literal None seed is "pull entropy from the OS" spelled out.
        assert codes("""\
        import numpy as np

        rng = np.random.default_rng(None)
        """) == ["D202"]

    def test_bad_none_seed_keyword(self):
        assert codes("""\
        from numpy.random import default_rng

        rng = default_rng(seed=None)
        """) == ["D202"]

    def test_good_seeded_random_state(self):
        assert codes("""\
        import numpy as np

        rng = np.random.RandomState(7)
        """) == []

    def test_good_seed_threaded_through(self):
        # A non-literal seed expression is the injection pattern, not
        # hidden entropy — the lint must not force constants.
        assert codes("""\
        from numpy.random import default_rng

        def make(seed):
            return default_rng(seed=seed)
        """) == []

    def test_good_seeded_random(self):
        assert codes("""\
        import random

        rng = random.Random(42)
        """) == []

    def test_good_seeded_default_rng(self):
        assert codes("""\
        import numpy as np

        def make(seed):
            return np.random.default_rng(seed)
        """) == []

    def test_good_fallback_pattern(self):
        # The codebase's canonical constructor-injection pattern.
        assert codes("""\
        import random

        class Model:
            def __init__(self, rng=None):
                self.rng = rng or random.Random(41)
        """) == []


class TestSetIteration:
    """D203 — hash-seed-dependent iteration order."""

    def test_bad_for_over_set_call(self):
        assert codes("""\
        def drain(queues):
            for q in set(queues):
                q.pop()
        """) == ["D203"]

    def test_bad_for_over_set_literal(self):
        assert codes("""\
        def visit():
            for node in {"a", "b", "c"}:
                print(node)
        """) == ["D203"]

    def test_bad_for_over_set_bound_name(self):
        assert codes("""\
        def drain(active):
            pending = set(active)
            for item in pending:
                item.step()
        """) == ["D203"]

    def test_bad_comprehension_over_set(self):
        assert codes("""\
        def ids(nodes):
            return [n.id for n in set(nodes)]
        """) == ["D203"]

    def test_good_sorted_wrapper(self):
        assert codes("""\
        def drain(queues):
            for q in sorted(set(queues)):
                q.pop()
        """) == []

    def test_good_list_iteration(self):
        assert codes("""\
        def drain(queues):
            for q in list(queues):
                q.pop()
        """) == []

    def test_good_membership_only(self):
        assert codes("""\
        def seen_filter(items):
            seen = set()
            out = []
            for item in items:
                if item not in seen:
                    seen.add(item)
                    out.append(item)
            return out
        """) == []
