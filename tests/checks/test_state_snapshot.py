"""Fixture tests for the ``M12xx`` snapshot-completeness rules.

One true positive and one clean twin per rule, plus the
suppression-placement tests the class-anchored findings need: M12xx
findings anchor on the checkpoint method's ``def`` line (or the
companion's ``class`` line) — a ``# lint: ignore`` at the mutation
site named in the message does nothing.
"""

from repro.checks.engine import check_project_source
from repro.checks.state import STATE_RULES
from repro.checks.state.snapshot_rules import SNAPSHOT_RULES


def _codes(findings):
    return [f.rule for f in findings]


def _only(findings, code):
    return [f for f in findings if f.rule == code]


ENGINE_HEADER = (
    "class Engine:\n"
    "    def __init__(self, config):\n"
    "        self.config = config\n"
    "        self.depth = 0\n"
    "        self.inbox = []\n"
    "        self._cursor = 0\n"
    "\n"
    "    def tick(self, cell):\n"
    "        self.depth += 1\n"
    "        self.inbox.append(cell)\n"
    "        self._cursor += 1\n"
    "\n"
)


# ---------------------------------------------------------------------------
# M1201 snapshot-missing-field
# ---------------------------------------------------------------------------
class TestM1201SnapshotMissingField:
    def test_catches_field_the_snapshot_never_reads(self):
        findings = check_project_source({
            "src/repro/core/engine.py": ENGINE_HEADER + (
                "    def snapshot(self):\n"
                "        return {'depth': self.depth,\n"
                "                'inbox': list(self.inbox)}\n"
            ),
        }, SNAPSHOT_RULES)
        m1201 = _only(findings, "M1201")
        assert m1201, _codes(findings)
        finding = m1201[0]
        # Anchored at the snapshot def, naming the dropped field and
        # the mutation evidence.
        assert finding.line == 13
        assert "'_cursor'" in finding.message
        assert "tick()" in finding.message

    def test_clean_twin_reads_every_mutated_field(self):
        findings = check_project_source({
            "src/repro/core/engine.py": ENGINE_HEADER + (
                "    def snapshot(self):\n"
                "        return {'depth': self.depth,\n"
                "                'inbox': list(self.inbox),\n"
                "                'cursor': self._cursor}\n"
            ),
        }, SNAPSHOT_RULES)
        assert findings == []

    def test_coverage_reaches_through_self_calls(self):
        findings = check_project_source({
            "src/repro/core/engine.py": ENGINE_HEADER + (
                "    def snapshot(self):\n"
                "        return {'queues': self._pack(),\n"
                "                'depth': self.depth}\n"
                "\n"
                "    def _pack(self):\n"
                "        return (list(self.inbox), self._cursor)\n"
            ),
        }, SNAPSHOT_RULES)
        assert findings == []

    def test_construction_only_fields_are_not_required(self):
        findings = check_project_source({
            "src/repro/core/engine.py": (
                "class Engine:\n"
                "    def __init__(self, config):\n"
                "        self.config = config\n"
                "        self.depth = 0\n"
                "\n"
                "    def tick(self):\n"
                "        self.depth += 1\n"
                "\n"
                "    def snapshot(self):\n"
                "        return {'depth': self.depth}\n"
            ),
        }, SNAPSHOT_RULES)
        assert findings == []


# ---------------------------------------------------------------------------
# M1202 restore-missing-field
# ---------------------------------------------------------------------------
class TestM1202RestoreMissingField:
    SNAPSHOT_OK = (
        "    def snapshot(self):\n"
        "        return {'depth': self.depth,\n"
        "                'inbox': list(self.inbox),\n"
        "                'cursor': self._cursor}\n"
        "\n"
    )

    def test_catches_field_the_restore_never_writes(self):
        findings = check_project_source({
            "src/repro/core/engine.py": ENGINE_HEADER + self.SNAPSHOT_OK + (
                "    def restore(self, state):\n"
                "        self.depth = state['depth']\n"
                "        self.inbox = list(state['inbox'])\n"
            ),
        }, SNAPSHOT_RULES)
        m1202 = _only(findings, "M1202")
        assert m1202, _codes(findings)
        assert "'_cursor'" in m1202[0].message
        assert "never writes" in m1202[0].message

    def test_clean_twin_writes_every_mutated_field(self):
        findings = check_project_source({
            "src/repro/core/engine.py": ENGINE_HEADER + self.SNAPSHOT_OK + (
                "    def restore(self, state):\n"
                "        self.depth = state['depth']\n"
                "        self.inbox = list(state['inbox'])\n"
                "        self._cursor = state['cursor']\n"
            ),
        }, SNAPSHOT_RULES)
        assert findings == []

    def test_dict_update_restores_wholesale(self):
        findings = check_project_source({
            "src/repro/core/engine.py": ENGINE_HEADER + self.SNAPSHOT_OK + (
                "    def __setstate__(self, state):\n"
                "        self.__dict__.update(state)\n"
            ),
        }, SNAPSHOT_RULES)
        assert findings == []


# ---------------------------------------------------------------------------
# M1203 checkpoint-field-drift
# ---------------------------------------------------------------------------
class TestM1203CheckpointFieldDrift:
    SUBJECT = (
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self.depth = 0\n"
        "        self._pointer = 0\n"
        "\n"
        "    def tick(self):\n"
        "        self.depth += 1\n"
        "        self._pointer += 1\n"
        "\n"
        "\n"
    )

    def test_catches_companion_without_a_mutated_field(self):
        findings = check_project_source({
            "src/repro/core/engine.py": self.SUBJECT + (
                "class EngineCheckpoint:\n"
                "    depth: int\n"
            ),
        }, SNAPSHOT_RULES)
        m1203 = _only(findings, "M1203")
        assert m1203, _codes(findings)
        # Anchored at the companion class line.
        assert m1203[0].line == 11
        assert "'_pointer'" in m1203[0].message

    def test_clean_twin_matches_private_name_unprefixed(self):
        findings = check_project_source({
            "src/repro/core/engine.py": self.SUBJECT + (
                "class EngineCheckpoint:\n"
                "    depth: int\n"
                "    pointer: int\n"
            ),
        }, SNAPSHOT_RULES)
        assert findings == []

    def test_init_parameters_count_as_companion_surface(self):
        findings = check_project_source({
            "src/repro/core/engine.py": self.SUBJECT + (
                "class EngineSnapshot:\n"
                "    def __init__(self, depth, pointer):\n"
                "        self.payload = (depth, pointer)\n"
            ),
        }, SNAPSHOT_RULES)
        assert findings == []

    def test_suffix_without_subject_class_is_ignored(self):
        findings = check_project_source({
            "src/repro/core/io.py": (
                "class TraceSnapshot:\n"
                "    events: list\n"
            ),
        }, SNAPSHOT_RULES)
        assert findings == []


# ---------------------------------------------------------------------------
# Suppression placement for class-scoped findings (the M12 anchor is
# the def/class line, not the mutation evidence).
# ---------------------------------------------------------------------------
class TestSuppressionPlacement:
    BAD_SNAPSHOT = (
        "    def snapshot(self):\n"
        "        return {'depth': self.depth,\n"
        "                'inbox': list(self.inbox)}\n"
    )

    def test_ignore_on_the_snapshot_def_line_suppresses(self):
        findings = check_project_source({
            "src/repro/core/engine.py": ENGINE_HEADER + (
                "    # lint: ignore[M1201]\n"
            ) + self.BAD_SNAPSHOT,
        }, STATE_RULES)
        assert _only(findings, "M1201") == []

    def test_rule_name_works_as_well_as_code(self):
        findings = check_project_source({
            "src/repro/core/engine.py": ENGINE_HEADER + (
                "    # lint: ignore[snapshot-missing-field]\n"
            ) + self.BAD_SNAPSHOT,
        }, STATE_RULES)
        assert _only(findings, "M1201") == []

    def test_ignore_at_the_mutation_site_does_nothing(self):
        # The finding anchors on the ``def snapshot`` line; suppressing
        # at the mutation evidence named in the message must NOT work.
        source = ENGINE_HEADER.replace(
            "        self._cursor += 1\n",
            "        self._cursor += 1  # lint: ignore[M1201]\n",
        ) + self.BAD_SNAPSHOT
        findings = check_project_source(
            {"src/repro/core/engine.py": source}, STATE_RULES)
        assert _only(findings, "M1201"), _codes(findings)

    def test_companion_ignore_sits_on_the_class_line(self):
        findings = check_project_source({
            "src/repro/core/engine.py": (
                TestM1203CheckpointFieldDrift.SUBJECT
                + "# lint: ignore[M1203]\n"
                + "class EngineCheckpoint:\n"
                + "    depth: int\n"
            ),
        }, STATE_RULES)
        assert _only(findings, "M1203") == []
