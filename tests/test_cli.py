"""Command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_basic_run(self, capsys):
        assert main([
            "simulate", "--nodes", "8", "--grating-ports", "4",
            "--flows", "50", "--load", "0.3", "--seed", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "completed flows   : 50/50" in out
        assert "goodput" in out

    def test_ideal_flag(self, capsys):
        assert main([
            "simulate", "--nodes", "8", "--grating-ports", "4",
            "--flows", "30", "--ideal",
        ]) == 0
        assert "SIRIUS (IDEAL)" in capsys.readouterr().out

    def test_telemetry_sparkline(self, capsys):
        assert main([
            "simulate", "--nodes", "8", "--grating-ports", "4",
            "--flows", "30", "--telemetry",
        ]) == 0
        assert "backlog" in capsys.readouterr().out


class TestCompare:
    def test_all_systems_reported(self, capsys):
        assert main([
            "compare", "--nodes", "8", "--grating-ports", "4",
            "--flows", "40", "--loads", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "ESN (Ideal)" in out
        assert "ESN-OSUB (Ideal)" in out
        assert "Sirius" in out


class TestAnalyses:
    def test_power(self, capsys):
        assert main(["power", "--laser-overheads", "3"]) == 0
        out = capsys.readouterr().out
        assert "23.0%" in out

    def test_cost(self, capsys):
        assert main(["cost", "--grating-fractions", "0.25"]) == 0
        assert "26.8%" in capsys.readouterr().out

    def test_sync(self, capsys):
        assert main(["sync", "--nodes", "4", "--epochs", "3000"]) == 0
        assert "ps" in capsys.readouterr().out

    def test_prototype(self, capsys):
        assert main(["prototype", "--generation", "v1",
                     "--epochs", "3"]) == 0
        out = capsys.readouterr().out
        assert "Sirius v1" in out
        assert "error-free   : True" in out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["teleport"])
