"""Empirical flow-size distributions ([1] web search, [31] data mining)."""

import statistics

import pytest

from repro.workload.empirical import (
    DATA_MINING_CDF,
    WEB_SEARCH_CDF,
    EmpiricalSizeSampler,
    empirical_flows,
)


class TestSampler:
    def test_samples_respect_cdf_knots(self):
        sampler = EmpiricalSizeSampler(WEB_SEARCH_CDF, seed=1)
        sizes = [sampler.sample_bytes() for _ in range(20_000)]
        below_6k = sum(1 for s in sizes if s <= 6_000) / len(sizes)
        below_133k = sum(1 for s in sizes if s <= 133_000) / len(sizes)
        assert below_6k == pytest.approx(0.15, abs=0.02)
        assert below_133k == pytest.approx(0.80, abs=0.02)

    def test_data_mining_is_mice_heavy(self):
        # VL2: half the flows are ~100 B mice.
        sampler = EmpiricalSizeSampler(DATA_MINING_CDF, seed=2)
        sizes = [sampler.sample_bytes() for _ in range(20_000)]
        median = statistics.median(sizes)
        assert median <= 150

    def test_heavy_tail_carries_most_bytes(self):
        sampler = EmpiricalSizeSampler(DATA_MINING_CDF, seed=3)
        sizes = sorted((sampler.sample_bytes() for _ in range(20_000)),
                       reverse=True)
        top_5pct = sum(sizes[: len(sizes) // 20])
        assert top_5pct / sum(sizes) > 0.5

    def test_analytic_mean_matches_monte_carlo(self):
        for cdf in (WEB_SEARCH_CDF, DATA_MINING_CDF):
            sampler = EmpiricalSizeSampler(cdf, seed=4)
            assert sampler.mean_bytes(60_000) == pytest.approx(
                sampler.analytic_mean_bytes(), rel=0.15
            )

    def test_sizes_bounded_by_distribution_extremes(self):
        sampler = EmpiricalSizeSampler(WEB_SEARCH_CDF, seed=5)
        for _ in range(5_000):
            size = sampler.sample_bytes()
            assert 40 <= size <= 20_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalSizeSampler([(100, 1.0)])  # one knot
        with pytest.raises(ValueError):
            EmpiricalSizeSampler([(100, 0.5), (50, 1.0)])  # unsorted sizes
        with pytest.raises(ValueError):
            EmpiricalSizeSampler([(100, 0.5), (200, 0.9)])  # ends < 1
        with pytest.raises(ValueError):
            EmpiricalSizeSampler([(0, 0.5), (200, 1.0)])  # zero size


class TestFlowGeneration:
    def test_flows_sorted_and_valid(self):
        flows = empirical_flows("web_search", 500, n_nodes=16, load=0.5,
                                node_bandwidth_bps=100e9)
        arrivals = [f.arrival_time for f in flows]
        assert arrivals == sorted(arrivals)
        for flow in flows:
            assert flow.src != flow.dst
            assert flow.size_bits >= 8

    def test_load_calibration(self):
        flows = empirical_flows("data_mining", 20_000, n_nodes=16,
                                load=0.5, node_bandwidth_bps=100e9,
                                seed=7)
        window = flows[-1].arrival_time - flows[0].arrival_time
        offered = sum(f.size_bits for f in flows) / window
        assert offered == pytest.approx(0.5 * 16 * 100e9, rel=0.25)

    def test_runs_through_the_simulator(self):
        from repro import SiriusNetwork

        net = SiriusNetwork(16, 4, uplink_multiplier=1.0, seed=1)
        flows = empirical_flows(
            "web_search", 60, n_nodes=16, load=0.3,
            node_bandwidth_bps=net.reference_node_bandwidth_bps,
        )
        result = net.run(flows)
        assert result.completion_fraction == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            empirical_flows("ad_serving", 10, 8, 0.5, 1e9)
        with pytest.raises(ValueError):
            empirical_flows("web_search", 0, 8, 0.5, 1e9)
        with pytest.raises(ValueError):
            empirical_flows("web_search", 10, 1, 0.5, 1e9)
        with pytest.raises(ValueError):
            empirical_flows("web_search", 10, 8, 0.0, 1e9)
