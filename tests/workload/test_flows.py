"""Pareto/Poisson flow workload (paper §7)."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.units import BYTE, KILOBYTE
from repro.workload import FlowWorkload, WorkloadConfig, load_to_rate
from repro.workload.flows import pareto_scale_for_mean


class TestParetoCalibration:
    def test_untruncated_scale_formula(self):
        # mean = shape * xm / (shape - 1).
        xm = pareto_scale_for_mean(100.0, 1.05)
        assert xm == pytest.approx(100.0 * 0.05 / 1.05)

    def test_empirical_mean_close_to_target(self):
        config = WorkloadConfig(
            n_nodes=8, load=0.5, node_bandwidth_bps=1e9,
            mean_flow_bits=100 * KILOBYTE, truncation_bits=10 * 8e6,
            seed=3,
        )
        workload = FlowWorkload(config)
        mean = workload.empirical_mean_bits(50_000)
        assert mean == pytest.approx(100 * KILOBYTE, rel=0.15)

    def test_paper_median_anchor_46_bytes(self):
        # §7 (Fig 13): mean 512 B Pareto(1.05) has a ~46 B median.
        config = WorkloadConfig(
            n_nodes=8, load=0.5, node_bandwidth_bps=1e9,
            mean_flow_bits=512 * BYTE, min_flow_bits=1, seed=4,
        )
        workload = FlowWorkload(config)
        sizes = [workload.sample_size_bits() for _ in range(40_000)]
        median_bytes = statistics.median(sizes) / 8
        assert median_bytes == pytest.approx(46.0, rel=0.12)

    def test_heavy_tail_most_bytes_in_few_flows(self):
        config = WorkloadConfig(n_nodes=8, load=0.5,
                                node_bandwidth_bps=1e9, seed=5)
        workload = FlowWorkload(config)
        sizes = sorted(
            (workload.sample_size_bits() for _ in range(20_000)),
            reverse=True,
        )
        top_decile = sum(sizes[: len(sizes) // 10])
        assert top_decile / sum(sizes) > 0.5

    @settings(max_examples=30, deadline=None)
    @given(mean=st.floats(1e3, 1e7), factor=st.floats(2.0, 100.0))
    def test_truncated_solver_hits_target(self, mean, factor):
        from math import isclose

        truncation = mean * factor
        xm = pareto_scale_for_mean(mean, 1.05, truncation)
        # Recompute the truncated mean at the solved xm.
        shape = 1.05
        z = 1.0 - (xm / truncation) ** shape
        numerator = shape * xm ** shape * (
            truncation ** (1 - shape) - xm ** (1 - shape)
        ) / (1 - shape)
        assert isclose(numerator / z, mean, rel_tol=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            pareto_scale_for_mean(-1.0, 1.05)
        with pytest.raises(ValueError):
            pareto_scale_for_mean(100.0, 1.0)
        with pytest.raises(ValueError):
            pareto_scale_for_mean(100.0, 1.05, truncation=50.0)


class TestLoadDefinition:
    def test_load_to_rate_inverts_definition(self):
        # L = F / (R N tau); rate = 1/tau.
        rate = load_to_rate(0.5, n_nodes=16, node_bandwidth_bps=200e9,
                            mean_flow_bits=800_000)
        load = 800_000 * rate / (200e9 * 16)
        assert load == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            load_to_rate(0.0, 16, 1e9, 1e5)
        with pytest.raises(ValueError):
            load_to_rate(0.5, 1, 1e9, 1e5)
        with pytest.raises(ValueError):
            load_to_rate(0.5, 16, 0.0, 1e5)


class TestGeneration:
    def make(self, **kwargs):
        defaults = dict(n_nodes=16, load=0.5, node_bandwidth_bps=1e9,
                        seed=1)
        defaults.update(kwargs)
        return FlowWorkload(WorkloadConfig(**defaults))

    def test_flows_sorted_by_arrival(self):
        flows = self.make().generate(500)
        arrivals = [f.arrival_time for f in flows]
        assert arrivals == sorted(arrivals)

    def test_endpoints_valid_and_distinct(self):
        flows = self.make().generate(500)
        for flow in flows:
            assert 0 <= flow.src < 16
            assert 0 <= flow.dst < 16
            assert flow.src != flow.dst

    def test_endpoints_cover_all_nodes(self):
        flows = self.make().generate(2000)
        assert {f.src for f in flows} == set(range(16))
        assert {f.dst for f in flows} == set(range(16))

    def test_mean_interarrival_matches_load(self):
        workload = self.make(load=1.0, mean_flow_bits=1e6)
        flows = workload.generate(20_000)
        window = flows[-1].arrival_time - flows[0].arrival_time
        empirical_rate = (len(flows) - 1) / window
        assert empirical_rate == pytest.approx(workload.arrival_rate,
                                               rel=0.05)

    def test_deterministic_given_seed(self):
        a = self.make(seed=9).generate(100)
        b = self.make(seed=9).generate(100)
        assert [(f.src, f.dst, f.size_bits) for f in a] == (
            [(f.src, f.dst, f.size_bits) for f in b]
        )

    def test_expected_duration(self):
        workload = self.make()
        assert workload.expected_duration(1000) == pytest.approx(
            1000 / workload.arrival_rate
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make().generate(0)
        with pytest.raises(ValueError):
            self.make().expected_duration(-1)
