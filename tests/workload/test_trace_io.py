"""Flow-trace CSV import/export."""

import pytest

from repro.core.cell import Flow
from repro.workload.trace_io import read_flows, trace_summary, write_flows


def sample_flows():
    return [
        Flow(0, 1, 2, size_bits=1000, arrival_time=0.5),
        Flow(1, 3, 4, size_bits=2_000_000, arrival_time=0.1),
        Flow(2, 0, 5, size_bits=42, arrival_time=0.3),
    ]


class TestRoundTrip:
    def test_write_read_lossless(self, tmp_path):
        path = tmp_path / "trace.csv"
        flows = sample_flows()
        assert write_flows(path, flows) == 3
        loaded = read_flows(path)
        by_id = {f.flow_id: f for f in loaded}
        for original in flows:
            restored = by_id[original.flow_id]
            assert restored.src == original.src
            assert restored.dst == original.dst
            assert restored.size_bits == original.size_bits
            assert restored.arrival_time == original.arrival_time

    def test_reader_sorts_by_arrival(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_flows(path, sample_flows())
        loaded = read_flows(path)
        arrivals = [f.arrival_time for f in loaded]
        assert arrivals == sorted(arrivals)

    def test_loaded_trace_runs_in_the_simulator(self, tmp_path):
        from repro import SiriusNetwork

        path = tmp_path / "trace.csv"
        write_flows(path, sample_flows())
        net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=1)
        result = net.run(read_flows(path))
        assert result.completion_fraction == 1.0


class TestValidation:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_flows(path)

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            read_flows(path)

    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("flow_id,src,dst,size_bits,arrival_time\n1,2,3\n")
        with pytest.raises(ValueError):
            read_flows(path)

    def test_invalid_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "flow_id,src,dst,size_bits,arrival_time\n0,1,1,100,0.0\n"
        )
        with pytest.raises(ValueError, match=":2:"):
            read_flows(path)  # src == dst is rejected by Flow

    def test_duplicate_ids_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "flow_id,src,dst,size_bits,arrival_time\n"
            "0,1,2,100,0.0\n0,2,3,100,0.1\n"
        )
        with pytest.raises(ValueError, match="duplicate"):
            read_flows(path)


class TestSummary:
    def test_statistics(self):
        summary = trace_summary(sample_flows())
        assert summary["flows"] == 3
        assert summary["nodes"] == 6
        assert summary["total_bits"] == 2_001_042
        assert summary["span_s"] == pytest.approx(0.4)

    def test_empty(self):
        assert trace_summary([]) == {"flows": 0}
