"""Production packet-size trace model (paper §2.2)."""

import pytest

from repro.workload import PacketTraceModel
from repro.workload.packets import (
    CACHE_MARGINALS,
    max_guardband_for_overhead,
    packet_duration_s,
    switching_overhead,
)


class TestPublishedMarginals:
    def test_34_percent_below_128B(self):
        model = PacketTraceModel(seed=1)
        assert model.fraction_below(128) == pytest.approx(0.34, abs=0.01)

    def test_97_8_percent_at_most_576B(self):
        model = PacketTraceModel(seed=1)
        assert model.fraction_at_most(576) == pytest.approx(0.978, abs=0.005)

    def test_cache_trace_91_percent_at_most_576B(self):
        model = PacketTraceModel(marginals=CACHE_MARGINALS, seed=2)
        assert model.fraction_at_most(576) == pytest.approx(0.91, abs=0.01)

    def test_sizes_within_ethernet_bounds(self):
        model = PacketTraceModel(seed=3)
        sizes = model.sample_many(5_000)
        assert all(64 <= s <= 1500 for s in sizes)

    def test_deterministic_by_seed(self):
        assert (PacketTraceModel(seed=4).sample_many(100)
                == PacketTraceModel(seed=4).sample_many(100))

    def test_marginal_validation(self):
        with pytest.raises(ValueError):
            PacketTraceModel(marginals=((128, 0.5), (100, 0.9), (1500, 1.0)))
        with pytest.raises(ValueError):
            PacketTraceModel(marginals=((128, 0.5), (1500, 0.9)))
        with pytest.raises(ValueError):
            PacketTraceModel(marginals=((32, 0.5), (1500, 1.0)))

    def test_sample_many_validation(self):
        with pytest.raises(ValueError):
            PacketTraceModel().sample_many(0)


class TestSwitchingArithmetic:
    def test_576B_lasts_92ns_at_50g(self):
        assert packet_duration_s(576) == pytest.approx(92.16e-9, rel=1e-3)

    def test_10ns_reconfig_is_about_10_percent_overhead(self):
        overhead = switching_overhead(9.2e-9)
        assert overhead == pytest.approx(0.0998, abs=0.001)

    def test_guardband_budget_is_9_2ns(self):
        # §2.2: <10% overhead requires reconfiguration below 9.2 ns.
        assert max_guardband_for_overhead(0.1) == pytest.approx(
            9.216e-9, rel=1e-3
        )

    def test_3_84ns_prototype_overhead_is_low(self):
        assert switching_overhead(3.84e-9) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            packet_duration_s(0)
        with pytest.raises(ValueError):
            switching_overhead(-1.0)
        with pytest.raises(ValueError):
            max_guardband_for_overhead(1.5)
