"""Traffic-matrix patterns (ablation workloads)."""

from collections import Counter

import pytest

from repro.workload import TrafficPattern
from repro.workload.traffic_matrix import patterned_flows


class TestPatterns:
    def test_uniform_never_self(self):
        sampler = TrafficPattern("uniform", 8).sampler()
        for _ in range(500):
            src, dst = sampler.sample()
            assert src != dst

    def test_permutation_is_fixed_point_free_and_consistent(self):
        pattern = TrafficPattern("permutation", 16)
        sampler = pattern.sampler()
        mapping = {}
        for _ in range(2000):
            src, dst = sampler.sample()
            assert src != dst
            if src in mapping:
                assert mapping[src] == dst
            mapping[src] = dst
        # A permutation: distinct destinations.
        assert len(set(mapping.values())) == len(mapping)

    def test_incast_targets_hotspot(self):
        sampler = TrafficPattern("incast", 8, hotspot_node=5).sampler()
        for _ in range(200):
            src, dst = sampler.sample()
            assert dst == 5
            assert src != 5

    def test_neighbour_ring(self):
        sampler = TrafficPattern("neighbour", 8).sampler()
        for _ in range(200):
            src, dst = sampler.sample()
            assert dst == (src + 1) % 8

    def test_hotspot_fraction_respected(self):
        pattern = TrafficPattern("hotspot", 8, hotspot_node=0,
                                 hotspot_fraction=0.5, seed=5)
        sampler = pattern.sampler()
        hits = sum(1 for _ in range(4000) if sampler.sample()[1] == 0)
        assert 0.45 < hits / 4000 < 0.65  # 0.5 hotspot + uniform residue

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TrafficPattern("mesh", 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficPattern("uniform", 1)
        with pytest.raises(ValueError):
            TrafficPattern("incast", 8, hotspot_node=8)
        with pytest.raises(ValueError):
            TrafficPattern("hotspot", 8, hotspot_fraction=1.5)


class TestPatternedFlows:
    def test_flow_list_shape(self):
        flows = patterned_flows(
            TrafficPattern("incast", 8, hotspot_node=2),
            sizes_bits=[1000] * 10, arrival_rate=1e6,
        )
        assert len(flows) == 10
        assert all(f.dst == 2 for f in flows)
        arrivals = [f.arrival_time for f in flows]
        assert arrivals == sorted(arrivals)

    def test_ids_sequential(self):
        flows = patterned_flows(TrafficPattern("uniform", 4),
                                sizes_bits=[10, 20, 30], arrival_rate=1.0)
        assert [f.flow_id for f in flows] == [0, 1, 2]
        assert [f.size_bits for f in flows] == [10, 20, 30]

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            patterned_flows(TrafficPattern("uniform", 4), [10],
                            arrival_rate=0.0)
