"""AWGR cyclic wavelength routing (paper §3.1, Fig 3a)."""

import pytest
from hypothesis import given, strategies as st

from repro.optics import AWGR


class TestRouting:
    def test_fig3a_four_port_matrix(self):
        # Fig 3a: wavelength j on port i lands on output (i + j) mod 4.
        awgr = AWGR(4)
        assert awgr.routing_matrix() == [
            [0, 1, 2, 3],
            [1, 2, 3, 0],
            [2, 3, 0, 1],
            [3, 0, 1, 2],
        ]

    def test_channel_for_inverts_output_port(self):
        awgr = AWGR(8)
        for i in range(8):
            for out in range(8):
                ch = awgr.channel_for(i, out)
                assert awgr.output_port(i, ch) == out

    def test_route_applies_insertion_loss(self):
        awgr = AWGR(4, insertion_loss_db=6.0)
        port, power = awgr.route(1, 2, power_mw=10.0)
        assert port == 3
        assert power == pytest.approx(10.0 * 10 ** -0.6)

    def test_route_counts_signals(self):
        awgr = AWGR(4)
        awgr.route(0, 1)
        awgr.route(2, 3)
        assert awgr.routed_count == 2

    def test_passive_device_draws_no_power(self):
        assert AWGR(100).power_consumption_w == 0.0

    def test_invalid_ports_rejected(self):
        awgr = AWGR(4)
        with pytest.raises(ValueError):
            awgr.output_port(4, 0)
        with pytest.raises(ValueError):
            awgr.output_port(0, 4)
        with pytest.raises(ValueError):
            awgr.output_port(-1, 0)
        with pytest.raises(ValueError):
            awgr.route(0, 0, power_mw=-1.0)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            AWGR(0)
        with pytest.raises(ValueError):
            AWGR(4, insertion_loss_db=-1.0)


class TestAllToAllProperty:
    def test_every_output_hears_every_input_once(self):
        awgr = AWGR(16)
        for port_sources in awgr.output_assignment():
            inputs = [src for src, _wl in port_sources]
            assert sorted(inputs) == list(range(16))

    @given(n=st.integers(min_value=1, max_value=64),
           channel=st.integers(min_value=0, max_value=63))
    def test_fixed_channel_is_permutation(self, n, channel):
        awgr = AWGR(n)
        channel %= n
        outputs = [awgr.output_port(i, channel) for i in range(n)]
        assert sorted(outputs) == list(range(n))

    @given(n=st.integers(min_value=1, max_value=64),
           port=st.integers(min_value=0, max_value=63))
    def test_fixed_input_is_permutation_over_channels(self, n, port):
        awgr = AWGR(n)
        port %= n
        outputs = [awgr.output_port(port, w) for w in range(n)]
        assert sorted(outputs) == list(range(n))


class TestContentionCheck:
    def test_same_channel_everywhere_is_contention_free(self):
        awgr = AWGR(8)
        assignments = {i: 3 for i in range(8)}
        assert awgr.is_contention_free(assignments)

    def test_collision_detected(self):
        awgr = AWGR(4)
        # inputs 0 and 1 both aiming at output 2.
        assert not awgr.is_contention_free({0: 2, 1: 1})

    def test_distinct_channels_from_one_input_cannot_collide(self):
        awgr = AWGR(4)
        assert awgr.is_contention_free({0: 1, 1: 1, 2: 1})
