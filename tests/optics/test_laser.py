"""Tunable laser and dampened-tuning driver (paper §3.2)."""

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.optics.laser import (
    DSDBR_N_WAVELENGTHS,
    DampenedTuningDriver,
    NaiveTuningDriver,
    TunableLaser,
)
from repro.units import MILLISECOND, NANOSECOND


class TestDampenedDriverCalibration:
    def test_all_pair_population_size(self):
        # 112 wavelengths -> 12,432 ordered pairs (§3.2).
        laser = TunableLaser()
        assert len(laser.all_pair_latencies()) == 12_432

    def test_median_is_14ns(self):
        laser = TunableLaser()
        median = statistics.median(laser.all_pair_latencies())
        assert median == pytest.approx(14 * NANOSECOND, rel=1e-6)

    def test_worst_case_is_92ns(self):
        laser = TunableLaser()
        assert max(laser.all_pair_latencies()) == pytest.approx(
            92 * NANOSECOND, rel=1e-6
        )

    def test_latency_grows_with_span(self):
        driver = DampenedTuningDriver()
        latencies = [driver.tuning_latency(d) for d in range(1, 112)]
        assert latencies == sorted(latencies)

    def test_zero_span_is_free(self):
        assert DampenedTuningDriver().tuning_latency(0) == 0.0

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            DampenedTuningDriver().tuning_latency(-1)

    def test_current_steps_overshoot_then_undershoot(self):
        driver = DampenedTuningDriver()
        steps = driver.current_steps(10.0, 20.0)
        assert len(steps) == 3
        assert steps[0] > 20.0    # overshoot past the target
        assert steps[1] < 20.0    # corrective undershoot
        assert steps[2] == 20.0   # settle


class TestNaiveDriver:
    def test_millisecond_settling_regardless_of_span(self):
        driver = NaiveTuningDriver()
        assert driver.tuning_latency(1) == pytest.approx(10 * MILLISECOND)
        assert driver.tuning_latency(111) == pytest.approx(10 * MILLISECOND)

    def test_single_current_step(self):
        assert NaiveTuningDriver().current_steps(1.0, 5.0) == [5.0]

    def test_rejects_bad_settle_time(self):
        with pytest.raises(ValueError):
            NaiveTuningDriver(settle_time_s=0.0)


class TestTunableLaserState:
    def test_tune_updates_channel_and_settle_time(self):
        laser = TunableLaser()
        latency = laser.tune(50, now=1.0)
        assert laser.current_channel == 50
        assert laser.settled_at == pytest.approx(1.0 + latency)
        assert not laser.is_settled(1.0)
        assert laser.is_settled(1.0 + latency)

    def test_tuning_to_same_channel_is_free(self):
        laser = TunableLaser(current_channel=5)
        assert laser.tune(5, now=0.0) == 0.0

    def test_stateless_latency_matches_driver(self):
        laser = TunableLaser()
        assert laser.tuning_latency(0, 111) == pytest.approx(92 * NANOSECOND)

    def test_default_power_characteristics(self):
        laser = TunableLaser()
        assert laser.output_power_dbm == 16.0
        assert laser.power_consumption_w == pytest.approx(3.8)

    def test_out_of_range_channel_rejected(self):
        laser = TunableLaser(n_wavelengths=4)
        with pytest.raises(ValueError):
            laser.tune(4)
        with pytest.raises(ValueError):
            laser.tuning_latency(0, 7)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TunableLaser(n_wavelengths=0)
        with pytest.raises(ValueError):
            TunableLaser(n_wavelengths=4, current_channel=9)

    @given(a=st.integers(0, DSDBR_N_WAVELENGTHS - 1),
           b=st.integers(0, DSDBR_N_WAVELENGTHS - 1))
    def test_latency_symmetric_in_direction(self, a, b):
        laser = TunableLaser()
        assert laser.tuning_latency(a, b) == laser.tuning_latency(b, a)


class TestRingWaveform:
    def test_settles_within_driver_latency(self):
        laser = TunableLaser()
        times, deviation = laser.ring_waveform(10, 60)
        latency = laser.tuning_latency(10, 60)
        settled = [d for t, d in zip(times, deviation) if t >= latency]
        assert settled, "waveform must extend past the settle time"
        assert all(abs(d) < 0.5 for d in settled)

    def test_initial_deviation_is_full_span(self):
        laser = TunableLaser()
        _times, deviation = laser.ring_waveform(10, 60)
        assert deviation[0] == pytest.approx(-(60 - 10))

    def test_same_channel_waveform_is_flat(self):
        laser = TunableLaser()
        _times, deviation = laser.ring_waveform(7, 7)
        assert all(d == 0.0 for d in deviation)

    def test_waveform_oscillates(self):
        laser = TunableLaser()
        _times, deviation = laser.ring_waveform(0, 40)
        signs = [d > 0 for d in deviation if abs(d) > 1e-6]
        # Ringing crosses zero at least twice.
        changes = sum(1 for a, b in zip(signs, signs[1:]) if a != b)
        assert changes >= 2
