"""Wavelength stability and temperature control (§5)."""

import pytest

from repro.optics.stability import (
    StabilityBudget,
    TecPowerModel,
    channel_spacing_nm,
)


class TestSpacing:
    def test_50ghz_is_0_4nm_at_1550(self):
        assert channel_spacing_nm(50.0) == pytest.approx(0.4, abs=0.01)

    def test_100ghz_doubles_it(self):
        assert channel_spacing_nm(100.0) == pytest.approx(
            2 * channel_spacing_nm(50.0), rel=1e-3
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            channel_spacing_nm(0.0)


class TestStabilityBudget:
    def test_margin_is_fraction_of_spacing(self):
        budget = StabilityBudget()
        assert budget.passband_margin_nm == pytest.approx(0.12, abs=0.01)

    def test_temperature_tolerance_near_one_degree(self):
        # 0.12 nm margin at 0.1 nm/°C: ~1.2 °C — uncontrolled lasers
        # (tens of °C ambient swings) cannot hold an AWGR channel.
        budget = StabilityBudget()
        assert budget.max_temperature_error_c == pytest.approx(1.2,
                                                               abs=0.1)
        assert budget.stays_in_passband(1.0)
        assert not budget.stays_in_passband(25.0)

    def test_drift_linear(self):
        budget = StabilityBudget()
        assert budget.drift_nm(10.0) == pytest.approx(1.0)

    def test_wider_grid_relaxes_control(self):
        tight = StabilityBudget(spacing_ghz=50.0)
        loose = StabilityBudget(spacing_ghz=100.0)
        assert (loose.max_temperature_error_c
                > tight.max_temperature_error_c)

    def test_validation(self):
        with pytest.raises(ValueError):
            StabilityBudget(passband_fraction=0.7)
        with pytest.raises(ValueError):
            StabilityBudget(drift_nm_per_c=0.0)
        with pytest.raises(ValueError):
            StabilityBudget().stays_in_passband(-1.0)
        with pytest.raises(ValueError):
            StabilityBudget().drift_nm(-1.0)


class TestTecPower:
    def test_cooling_dominates_the_tunable_laser(self):
        # §5: "much of the power consumption for the tunable laser is
        # due to the need for a temperature controller"; totals land
        # near the 3.8 W of off-the-shelf parts.
        breakdown = TecPowerModel().laser_power_breakdown()
        assert breakdown["cooling_fraction"] > 0.6
        assert breakdown["total_w"] == pytest.approx(3.8, abs=0.6)

    def test_better_cooling_cuts_power(self):
        model = TecPowerModel()
        datacenter = model.power_w(ambient_swing_c=25.0,
                                   allowed_error_c=1.2)
        chilled = model.power_w(ambient_swing_c=5.0, allowed_error_c=1.2)
        assert chilled < datacenter

    def test_tighter_control_costs_more(self):
        model = TecPowerModel()
        assert (model.power_w(25.0, 0.5) > model.power_w(25.0, 2.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            TecPowerModel().power_w(-1.0, 1.0)
        with pytest.raises(ValueError):
            TecPowerModel().power_w(1.0, 0.0)
