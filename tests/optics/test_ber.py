"""BER vs received power and FEC (paper §6, Fig 8d)."""

import math

import pytest

from repro.optics.ber import (
    BERModel,
    ERROR_FREE_BER,
    FEC_BER_THRESHOLD,
    expected_bit_errors,
)


class TestCalibration:
    def test_threshold_crossing_at_sensitivity(self):
        model = BERModel(channel_offsets_db=(0.0,))
        assert model.pre_fec_ber(-8.0) == pytest.approx(
            FEC_BER_THRESHOLD, rel=1e-3
        )

    def test_ber_monotone_decreasing_in_power(self):
        model = BERModel(channel_offsets_db=(0.0,))
        powers = [-10 + 0.5 * k for k in range(16)]
        bers = [model.pre_fec_ber(p) for p in powers]
        assert bers == sorted(bers, reverse=True)

    def test_steep_waterfall(self):
        model = BERModel(channel_offsets_db=(0.0,))
        # 1 dB above sensitivity the BER collapses by over an order of
        # magnitude; 2 dB above, by several orders (Fig 8d's steepness).
        assert model.pre_fec_ber(-7.0) < model.pre_fec_ber(-8.0) / 5
        assert model.pre_fec_ber(-6.0) < model.pre_fec_ber(-8.0) / 100
        assert model.pre_fec_ber(-4.0) < model.pre_fec_ber(-8.0) / 1e6


class TestPostFec:
    def test_error_free_at_sensitivity(self):
        model = BERModel(channel_offsets_db=(0.0,))
        assert model.error_free(-8.0)
        assert model.post_fec_ber(-8.0) == ERROR_FREE_BER

    def test_errors_below_sensitivity(self):
        model = BERModel(channel_offsets_db=(0.0,))
        assert not model.error_free(-9.5)
        assert model.post_fec_ber(-9.5) > 1e-12

    def test_fig8d_all_four_channels_error_free_at_minus_8(self):
        model = BERModel()
        # Channel offsets are within ±0.25 dB; at -7.75 dBm all channels
        # must be error-free (the paper's -8 dBm claim modulo the small
        # per-channel spread visible in Fig 8d).
        for channel in range(4):
            assert model.error_free(-7.75 + 0.01, channel)

    def test_per_channel_sensitivities_differ(self):
        model = BERModel()
        sens = {model.sensitivity_for_channel(c) for c in range(4)}
        assert len(sens) == 4


class TestCurve:
    def test_curve_shape(self):
        model = BERModel()
        curve = model.ber_curve(0, power_range_dbm=(-10, -2), n_points=17)
        assert len(curve["received_dbm"]) == 17
        logs = curve["log10_ber"]
        assert logs == sorted(logs, reverse=True)
        assert logs[0] > -4          # bad at low power
        assert logs[-1] < -10        # excellent at high power

    def test_curve_rejects_bad_range(self):
        with pytest.raises(ValueError):
            BERModel().ber_curve(0, power_range_dbm=(-2, -10))

    def test_negative_channel_rejected(self):
        with pytest.raises(ValueError):
            BERModel().pre_fec_ber(-8.0, channel=-1)


class TestExpectedErrors:
    def test_counts(self):
        assert expected_bit_errors(1e-12, 1e12) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_bit_errors(1.5, 100)
        with pytest.raises(ValueError):
            expected_bit_errors(0.1, -1)

    def test_24h_at_50g_error_free(self):
        # §6's error-free criterion is BER < 1e-12; the model's post-FEC
        # floor sits three orders of magnitude below it.
        bits = 50e9 * 86_400
        assert (expected_bit_errors(ERROR_FREE_BER, bits)
                < expected_bit_errors(1e-12, bits) / 100)


def test_q_inversion_roundtrip():
    # The internal calibration solves erfc for Q; verify the round trip.
    from repro.optics.ber import _q_from_ber, _PAM4_PREFACTOR

    for ber in (1e-3, 3.8e-3, 1e-5):
        q = _q_from_ber(ber)
        back = _PAM4_PREFACTOR * 0.5 * math.erfc(q / math.sqrt(2))
        assert back == pytest.approx(ber, rel=1e-6)
