"""Disaggregated tunable laser designs (paper §3.3, Fig 4, Fig 8b)."""

import pytest

from repro.optics.disaggregated import (
    CombLaserSource,
    FixedLaserBank,
    TunableLaserBank,
    compare_designs,
)
from repro.units import NANOSECOND


class TestFixedLaserBank:
    def test_tuning_is_subnanosecond(self):
        bank = FixedLaserBank(19)
        assert bank.worst_case_tuning_latency() < 1 * NANOSECOND

    def test_latency_independent_of_span(self):
        # Fig 8b: adjacent and distant switches take the same sub-ns time.
        bank = FixedLaserBank(19)
        adjacent = bank.tuning_latency(9, 10)
        distant = bank.tuning_latency(0, 18)
        assert adjacent < 1 * NANOSECOND
        assert distant < 1 * NANOSECOND
        # Both are bounded by the same per-gate transition times - no
        # span-proportional term.
        assert abs(adjacent - distant) < 1 * NANOSECOND

    def test_tune_state(self):
        bank = FixedLaserBank(19)
        latency = bank.tune(7, now=0.0)
        assert bank.current_channel == 7
        assert latency > 0
        assert bank.is_settled(latency)
        assert not bank.is_settled(latency / 2)

    def test_retune_same_channel_free(self):
        bank = FixedLaserBank(19)
        bank.tune(3)
        assert bank.tune(3) == 0.0

    def test_power_scales_with_channel_count(self):
        small, large = FixedLaserBank(19), FixedLaserBank(100)
        assert large.power_consumption_w > small.power_consumption_w
        # The laser bank dominates: ~1 W per channel.
        assert small.power_consumption_w == pytest.approx(19.3, abs=0.5)

    def test_invalid_channel(self):
        with pytest.raises(ValueError):
            FixedLaserBank(19).tune(19)
        with pytest.raises(ValueError):
            FixedLaserBank(0)


class TestSwitchingTrace:
    def test_trace_shows_crossover(self):
        bank = FixedLaserBank(19)
        trace = bank.switching_trace(0, 18)
        assert trace["old_intensity"][0] == pytest.approx(1.0)
        assert trace["new_intensity"][0] == pytest.approx(0.0)
        assert trace["old_intensity"][-1] < 0.2
        assert trace["new_intensity"][-1] > 0.8

    def test_trace_requires_distinct_channels(self):
        with pytest.raises(ValueError):
            FixedLaserBank(19).switching_trace(4, 4)


class TestTunableLaserBank:
    def test_pipelining_hides_tuning_latency(self):
        bank = TunableLaserBank(112)
        # Visible switch latency is SOA-scale despite ms/ns-scale lasers.
        assert bank.tune(5) < 1 * NANOSECOND
        assert bank.tune(100) < 1 * NANOSECOND

    def test_pipeline_feasibility_at_100ns_slots(self):
        # §4.5: worst-case <100 ns tuning + 100 ns slots -> 2 lasers enough.
        bank = TunableLaserBank(112, n_lasers=2)
        assert bank.pipeline_feasible(100 * NANOSECOND)
        assert not bank.pipeline_feasible(10 * NANOSECOND)

    def test_three_lasers_tolerate_one_failure(self):
        bank = TunableLaserBank(112, n_lasers=3)
        bank.fail_laser(1)
        assert bank.healthy_lasers == 2
        # Still switches fine.
        assert bank.tune(50) < 1 * NANOSECOND
        assert bank.tune(60) < 1 * NANOSECOND

    def test_all_failures_raise(self):
        bank = TunableLaserBank(112, n_lasers=2)
        bank.fail_laser(0)
        with pytest.raises(RuntimeError):
            bank.fail_laser(1)

    def test_needs_at_least_two_lasers(self):
        with pytest.raises(ValueError):
            TunableLaserBank(112, n_lasers=1)

    def test_fewer_lasers_than_fixed_bank(self):
        fixed = FixedLaserBank(112)
        bank = TunableLaserBank(112, n_lasers=3)
        assert bank.power_consumption_w < fixed.power_consumption_w

    def test_coupler_loss_higher_than_mux(self):
        # §3.3: the coupler adds more insertion loss than the AWG mux.
        fixed = FixedLaserBank(19)
        bank = TunableLaserBank(19)
        assert bank.combiner_loss_db > fixed.combiner_loss_db

    def test_invalid_failure_index(self):
        with pytest.raises(ValueError):
            TunableLaserBank(19).fail_laser(5)


class TestCombLaser:
    def test_single_chip_uniform_spacing(self):
        assert CombLaserSource(19).channel_spacing_is_uniform()

    def test_higher_power_than_fixed_bank_today(self):
        assert (CombLaserSource(19).power_consumption_w
                > FixedLaserBank(19).power_consumption_w)

    def test_subnanosecond_switching(self):
        comb = CombLaserSource(19)
        assert comb.tune(10) < 1e-9


class TestComparison:
    def test_compare_covers_all_designs(self):
        rows = compare_designs(19, slot_duration_s=100e-9)
        names = {row["design"] for row in rows}
        assert names == {
            "FixedLaserBank", "TunableLaserBank", "CombLaserSource"
        }
        for row in rows:
            assert row["worst_tuning_s"] < 1e-9
            assert row["power_w"] > 0
