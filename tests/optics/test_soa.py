"""SOA gate and selector bank (paper §3.3, Fig 8a)."""

import pytest

from repro.optics.soa import (
    CHIP_N_SOAS,
    SOA,
    SOABank,
    WORST_CASE_FALL_S,
    WORST_CASE_RISE_S,
)


class TestSingleSOA:
    def test_turn_on_off_latencies(self):
        soa = SOA(rise_time_s=500e-12, fall_time_s=900e-12)
        assert soa.turn_on(now=0.0) == 500e-12
        assert soa.is_on
        assert soa.turn_off(now=1.0) == 900e-12
        assert not soa.is_on

    def test_redundant_transitions_are_free(self):
        soa = SOA(rise_time_s=500e-12, fall_time_s=900e-12)
        assert soa.turn_off() == 0.0
        soa.turn_on()
        assert soa.turn_on() == 0.0

    def test_transmission_gain_vs_blocking(self):
        soa = SOA(rise_time_s=1e-12, fall_time_s=1e-12, gain_db=10,
                  extinction_db=40)
        soa.turn_on(now=0.0)
        assert soa.transmission_db(now=1.0) == 10
        soa.turn_off(now=1.0)
        assert soa.transmission_db(now=2.0) == -40

    def test_mid_transition_output_undefined(self):
        soa = SOA(rise_time_s=1e-9, fall_time_s=1e-9)
        soa.turn_on(now=0.0)
        with pytest.raises(ValueError):
            soa.transmission_db(now=0.5e-9)

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            SOA(rise_time_s=0.0, fall_time_s=1e-12)


class TestBank:
    def test_chip_has_19_soas(self):
        assert len(SOABank()) == CHIP_N_SOAS

    def test_worst_cases_match_paper(self):
        bank = SOABank()
        assert max(bank.rise_times()) == pytest.approx(WORST_CASE_RISE_S)
        assert max(bank.fall_times()) == pytest.approx(WORST_CASE_FALL_S)
        # §6: 527 ps / 912 ps.
        assert WORST_CASE_RISE_S == pytest.approx(527e-12)
        assert WORST_CASE_FALL_S == pytest.approx(912e-12)

    def test_all_transitions_subnanosecond(self):
        bank = SOABank()
        assert bank.worst_case_latency() < 1e-9

    def test_select_turns_exactly_one_gate_on(self):
        bank = SOABank(8)
        bank.select(3, now=0.0)
        bank.select(5, now=1.0)
        states = [soa.is_on for soa in bank.soas]
        assert states == [i == 5 for i in range(8)]

    def test_select_latency_is_slower_of_on_off(self):
        bank = SOABank(4)
        bank.select(0, now=0.0)
        latency = bank.select(1, now=1.0)
        expected = max(bank.soas[1].rise_time_s, bank.soas[0].fall_time_s)
        assert latency == pytest.approx(expected)

    def test_reselect_is_free(self):
        bank = SOABank(4)
        bank.select(2)
        assert bank.select(2) == 0.0

    def test_out_of_range_channel(self):
        with pytest.raises(ValueError):
            SOABank(4).select(4)

    def test_deterministic_with_seed(self):
        assert SOABank(seed=3).rise_times() == SOABank(seed=3).rise_times()
        assert SOABank(seed=3).rise_times() != SOABank(seed=4).rise_times()

    def test_cdf_levels(self):
        rises, falls, levels = SOABank().transition_cdf()
        assert rises == sorted(rises)
        assert falls == sorted(falls)
        assert levels[0] == pytest.approx(1 / CHIP_N_SOAS)
        assert levels[-1] == pytest.approx(1.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SOABank(0)
