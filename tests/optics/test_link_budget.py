"""Link budget and laser sharing (paper §4.5)."""

import pytest

from repro.optics.link_budget import (
    LinkBudget,
    laser_sharing_degree,
    lasers_per_node,
    splitter_loss_db,
)


class TestPaperBudget:
    def test_required_launch_is_7dbm(self):
        # -8 dBm sensitivity + 6 dB grating + 7 dB coupling + 2 dB margin.
        assert LinkBudget().required_launch_dbm == pytest.approx(7.0)

    def test_required_launch_is_5mw(self):
        assert LinkBudget().required_launch_mw == pytest.approx(5.0, abs=0.02)

    def test_16dbm_laser_closes_the_link(self):
        assert LinkBudget().closes(16.0)
        assert LinkBudget().headroom_db(16.0) == pytest.approx(9.0)

    def test_weak_laser_fails(self):
        assert not LinkBudget().closes(5.0)
        assert LinkBudget().headroom_db(5.0) < 0

    def test_received_power_excludes_margin(self):
        budget = LinkBudget()
        # 7 dBm launch - 6 dB grating - 7 dB coupling = -6 dBm received.
        assert budget.received_power_dbm(7.0) == pytest.approx(-6.0)

    def test_negative_losses_rejected(self):
        with pytest.raises(ValueError):
            LinkBudget(grating_loss_db=-1.0)


class TestLaserSharing:
    def test_paper_anchor_8_way_sharing(self):
        assert laser_sharing_degree() == 8

    def test_256_uplinks_need_32_chips(self):
        assert lasers_per_node(256) == 32

    def test_spares_are_added(self):
        assert lasers_per_node(256, n_spares=4) == 36

    def test_sharing_zero_when_laser_too_weak(self):
        assert LinkBudget(laser_output_dbm=5.0).max_sharing_degree() == 0

    def test_higher_power_laser_shares_more(self):
        # §4.5: higher output power allows a higher degree of sharing.
        assert (LinkBudget(laser_output_dbm=19.0).max_sharing_degree()
                > LinkBudget(laser_output_dbm=16.0).max_sharing_degree())

    def test_uplinks_not_divisible_round_up(self):
        assert lasers_per_node(9, sharing_degree=8) == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            lasers_per_node(0)
        with pytest.raises(ValueError):
            lasers_per_node(8, sharing_degree=0)


class TestSplitter:
    def test_8_way_split_costs_9db(self):
        assert splitter_loss_db(8) == pytest.approx(9.03, abs=0.01)

    def test_no_split_no_loss(self):
        assert splitter_loss_db(1) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            splitter_loss_db(0)
