"""Tier-1 guard: the incremental fluid engine must actually be faster.

``tests/sim/test_fluid_equivalence.py`` proves the incremental and
reference fluid loops are bit-identical; this test proves the
persistent-state machinery still pays for itself.  Both backends run
live, in-process, on a pinned mid-scale workload — large enough that
the reference loop's O(events × resources) rebuild separates clearly
from the incremental engine (the gap *grows* with scale: ~12x at the
bench matrix's 512 nodes, ~7x here at 256).  The assertion bar sits
well below the measured gap so CI noise and slow machines cannot
flake it, mirroring the fast≥1.3x and vectorized≥3x epoch-loop
guards.
"""

import time

from repro.sim.fluid import FluidNetwork
from repro.units import KILOBYTE, MEGABYTE
from repro.workload import FlowWorkload, WorkloadConfig

#: Below the ~7x measured on this workload, above anything a merely
#: cosmetic rework could hit by accident: losing the persistent index,
#: the lazy drain accounting or the completion heap drops the ratio
#: under the bar.
MIN_FLUID_SPEEDUP = 5.0

GUARD_NODES, GUARD_FLOWS, GUARD_LOAD = 256, 400, 0.5
BANDWIDTH = 4e11


def _guard_workload():
    return FlowWorkload(WorkloadConfig(
        n_nodes=GUARD_NODES,
        load=GUARD_LOAD,
        node_bandwidth_bps=BANDWIDTH,
        mean_flow_bits=100 * KILOBYTE,
        truncation_bits=2 * MEGABYTE,
        seed=7,
    )).generate(GUARD_FLOWS)


def _timed_run(backend: str) -> float:
    net = FluidNetwork(GUARD_NODES, BANDWIDTH, backend=backend)
    flows = _guard_workload()
    start = time.perf_counter()
    net.run(flows)
    return time.perf_counter() - start


def _best_of(backend: str, reps: int = 3) -> float:
    return min(_timed_run(backend) for _ in range(reps))


def test_incremental_beats_reference():
    # Warm-up pass per backend absorbs first-call costs, then
    # best-of-3 damps scheduler noise.
    for backend in ("incremental", "reference"):
        _timed_run(backend)
    incremental = _best_of("incremental")
    reference = _best_of("reference")
    speedup = reference / incremental
    assert speedup >= MIN_FLUID_SPEEDUP, (
        f"incremental fluid engine only {speedup:.2f}x over reference "
        f"(required {MIN_FLUID_SPEEDUP}x)"
    )
