"""Tier-1 guard: the fast path must actually be faster.

Equivalence tests prove the fast path computes the same results; this
test proves it still pays for its complexity.  Both paths run live,
in-process, on the bench harness's quick micro scenario (sparse
activity — the regime the active-set rework targets, where the gap is
several-fold).  The assertion bar is deliberately far below the
recorded speedup (see the committed ``BENCH_<date>.json``, which
documents the >= 2x acceptance measurement at full scale) so CI noise
and slow machines cannot flake it — but a regression that makes the
fast path pointless still fails.
"""

import time

from repro.core.congestion import CongestionConfig
from repro.core.network import SiriusNetwork
from repro.perf.bench import (
    MICRO_FLOWS_QUICK,
    MICRO_GRATING_QUICK,
    MICRO_NODES_QUICK,
    _micro_workload,
)

#: Far below the measured gap (several-fold on this scenario).
MIN_SPEEDUP = 1.3


def _timed_run(fast: bool) -> float:
    net = SiriusNetwork(MICRO_NODES_QUICK, MICRO_GRATING_QUICK,
                        uplink_multiplier=1.5, config=CongestionConfig(),
                        seed=1, fast_path=fast)
    flows = _micro_workload(MICRO_NODES_QUICK, MICRO_FLOWS_QUICK,
                            net.reference_node_bandwidth_bps)
    start = time.perf_counter()
    net.run(flows)
    return time.perf_counter() - start


def test_fast_path_beats_reference():
    # Warm-up pass absorbs first-call costs (imports, allocator growth),
    # then best-of-3 per path damps scheduler noise.
    _timed_run(True)
    fast = min(_timed_run(True) for _ in range(3))
    reference = min(_timed_run(False) for _ in range(3))
    speedup = reference / fast
    assert speedup >= MIN_SPEEDUP, (
        f"fast path only {speedup:.2f}x over reference "
        f"(required {MIN_SPEEDUP}x)"
    )
