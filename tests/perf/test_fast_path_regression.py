"""Tier-1 guard: the non-reference backends must actually be faster.

Equivalence tests prove the fast and vectorized backends compute the
same results; these tests prove they still pay for their complexity.
All backends run live, in-process, on the bench harness's pinned micro
scenario (64 nodes, sparse activity — the regime the active-set and
slab reworks target).  The assertion bars sit well below the recorded
speedups (see the committed ``BENCH_<date>.json``: ~2.9x fast, ~3.5x
vectorized) so CI noise and slow machines cannot flake them — but a
regression that makes a backend pointless still fails.
"""

import time

from repro.core.congestion import CongestionConfig
from repro.core.network import SiriusNetwork
from repro.perf.bench import (
    MICRO_FLOWS,
    MICRO_GRATING,
    MICRO_NODES,
    _micro_workload,
)

#: Below the measured gaps (fast ~2.9x, vectorized ~3.5x on this
#: scenario) but high enough that losing the active-set or slab
#: machinery — not just noise — is what trips them.  The vectorized
#: bar is the backend's acceptance criterion: it must earn a 3x gap
#: over the reference loop at 64 nodes to justify a third strategy.
MIN_FAST_SPEEDUP = 1.3
MIN_VECTORIZED_SPEEDUP = 3.0


def _timed_run(backend: str) -> float:
    net = SiriusNetwork(MICRO_NODES, MICRO_GRATING,
                        uplink_multiplier=1.5, config=CongestionConfig(),
                        seed=1, backend=backend)
    flows = _micro_workload(MICRO_NODES, MICRO_FLOWS,
                            net.reference_node_bandwidth_bps)
    start = time.perf_counter()
    net.run(flows)
    return time.perf_counter() - start


def _best_of(backend: str, reps: int = 3) -> float:
    return min(_timed_run(backend) for _ in range(reps))


def test_backends_beat_reference():
    # Warm-up pass per backend absorbs first-call costs (imports,
    # allocator growth, numpy initialization), then best-of-3 per
    # backend damps scheduler noise.
    for backend in ("fast", "vectorized", "reference"):
        _timed_run(backend)
    fast = _best_of("fast")
    vectorized = _best_of("vectorized")
    reference = _best_of("reference")
    fast_speedup = reference / fast
    vectorized_speedup = reference / vectorized
    assert fast_speedup >= MIN_FAST_SPEEDUP, (
        f"fast backend only {fast_speedup:.2f}x over reference "
        f"(required {MIN_FAST_SPEEDUP}x)"
    )
    assert vectorized_speedup >= MIN_VECTORIZED_SPEEDUP, (
        f"vectorized backend only {vectorized_speedup:.2f}x over "
        f"reference (required {MIN_VECTORIZED_SPEEDUP}x)"
    )
