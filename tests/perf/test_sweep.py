"""ParallelSweepRunner: determinism, ordering and worker resolution."""

from dataclasses import dataclass

import pytest

from repro.perf import (
    WORKERS_ENV,
    FluidSweepJob,
    ParallelSweepRunner,
    SiriusSweepJob,
    run_fluid_job,
    run_sirius_job,
)
from repro.perf.sweep import resolve_workers


def _sirius_jobs(loads=(0.2, 0.4)):
    return [
        SiriusSweepJob(n_nodes=8, grating_ports=4, load=load, n_flows=40,
                       label=f"s@{load}")
        for load in loads
    ]


def _fluid_jobs(loads=(0.2, 0.4)):
    return [
        FluidSweepJob(n_nodes=8, load=load, n_flows=40,
                      node_bandwidth_bps=4e11, label=f"f@{load}")
        for load in loads
    ]


class TestDeterminism:
    def test_parallel_equals_serial_sirius(self):
        jobs = _sirius_jobs()
        serial = ParallelSweepRunner(1).run_sirius(jobs)
        parallel = ParallelSweepRunner(2).run_sirius(jobs)
        assert serial == parallel

    def test_parallel_equals_serial_fluid(self):
        jobs = _fluid_jobs()
        serial = ParallelSweepRunner(1).run_fluid(jobs)
        parallel = ParallelSweepRunner(2).run_fluid(jobs)
        assert serial == parallel

    def test_results_in_submission_order(self):
        loads = (0.5, 0.1, 0.3)
        points = ParallelSweepRunner(2).run_sirius(_sirius_jobs(loads))
        assert [p.load for p in points] == list(loads)
        assert [p.label for p in points] == [f"s@{load}" for load in loads]

    def test_job_reruns_are_reproducible(self):
        job = _sirius_jobs((0.3,))[0]
        assert run_sirius_job(job) == run_sirius_job(job)
        fluid = _fluid_jobs((0.3,))[0]
        assert run_fluid_job(fluid) == run_fluid_job(fluid)


class TestJobValidation:
    def test_sirius_job_rejects_bad_load(self):
        with pytest.raises(ValueError):
            SiriusSweepJob(n_nodes=8, grating_ports=4, load=0.0, n_flows=10)

    def test_sirius_job_rejects_no_flows(self):
        with pytest.raises(ValueError):
            SiriusSweepJob(n_nodes=8, grating_ports=4, load=0.5, n_flows=0)

    def test_fluid_job_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            FluidSweepJob(n_nodes=8, load=0.5, n_flows=10,
                          node_bandwidth_bps=0.0)

    def test_fluid_job_rejects_bad_oversubscription(self):
        with pytest.raises(ValueError):
            FluidSweepJob(n_nodes=8, load=0.5, n_flows=10,
                          node_bandwidth_bps=4e11, oversubscription=-1.0)


class TestWorkerResolution:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_consulted(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) >= 1

    def test_rejects_nonpositive(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_single_job_runs_serially(self):
        # A one-job sweep must not pay pool startup; same results either
        # way, so just confirm it executes on a multi-worker runner.
        points = ParallelSweepRunner(4).run_sirius(_sirius_jobs((0.3,)))
        assert len(points) == 1 and points[0].kind == "sirius"

    def test_map_is_generic(self):
        # map() accepts any picklable callable + items, not just the
        # built-in job runners (the CLI uses this for mixed sweeps).
        runner = ParallelSweepRunner(2)
        assert runner.map(abs, [-2, 3, -4]) == [2, 3, 4]


class TestWorkerEnvValidation:
    def test_non_integer_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError) as excinfo:
            resolve_workers(None)
        assert WORKERS_ENV in str(excinfo.value)
        assert "many" in str(excinfo.value)

    def test_empty_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_float_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2.5")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestPickleFailFast:
    def test_unpicklable_job_field_named_before_pool_start(self):
        @dataclass(frozen=True)
        class BrokenJob:
            n_nodes: int
            make_net: object

        runner = ParallelSweepRunner(workers=2)
        jobs = [BrokenJob(n_nodes=8, make_net=lambda: None),
                BrokenJob(n_nodes=16, make_net=lambda: None)]
        with pytest.raises(ValueError) as excinfo:
            runner.map(_identity, jobs)
        message = str(excinfo.value)
        assert "job 0" in message
        assert "BrokenJob" in message
        assert "make_net" in message

    def test_unpicklable_worker_function_named(self):
        runner = ParallelSweepRunner(workers=2)
        with pytest.raises(ValueError) as excinfo:
            runner.map(lambda job: job, [1, 2, 3])
        assert "module-level function" in str(excinfo.value)

    def test_serial_path_skips_the_check(self):
        # workers=1 never pickles, so closures stay allowed there.
        runner = ParallelSweepRunner(workers=1)
        assert runner.map(lambda job: job * 2, [1, 2]) == [2, 4]

    def test_picklable_jobs_pass_through(self):
        runner = ParallelSweepRunner(workers=2)
        assert sorted(runner.map(_identity, [3, 1, 2])) == [1, 2, 3]


def _identity(job):
    return job
