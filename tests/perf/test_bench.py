"""The bench harness emits schema-valid, self-consistent payloads."""

import json
from pathlib import Path

import pytest

from repro.perf import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_V1,
    BENCH_SCHEMA_V2,
    VECTORIZED_4096_RSS_BUDGET_KB,
    run_bench,
    validate_payload,
    write_payload,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def quick_payload():
    # The tier-1 smoke invocation of `sirius-repro bench --quick`: the
    # pinned 64-node micro scenario runs for all three backends even in
    # quick mode (only fluid/sweep shrink and the scale runs drop out).
    return run_bench(quick=True, workers=2)


class TestQuickRun:
    def test_schema_and_validation(self, quick_payload):
        assert quick_payload["schema"] == BENCH_SCHEMA
        assert quick_payload["quick"] is True
        validate_payload(quick_payload)

    def test_all_scenarios_present(self, quick_payload):
        scenarios = {r["scenario"] for r in quick_payload["records"]}
        assert scenarios == {
            "micro_epoch_loop[fast]",
            "micro_epoch_loop[reference]",
            "micro_epoch_loop[vectorized]",
            "fluid_events[reference]",
            "fluid_events[incremental]",
            "sweep_e2e",
        }

    def test_micro_covers_all_backends_at_full_scale(self, quick_payload):
        micro = [r for r in quick_payload["records"]
                 if r["scenario"].startswith("micro_epoch_loop")]
        assert {r["backend"] for r in micro} == {
            "reference", "fast", "vectorized",
        }
        assert all(r["nodes"] == 64 for r in micro)

    def test_speedups_recorded(self, quick_payload):
        assert quick_payload["micro_speedup"] > 0
        assert quick_payload["vectorized_speedup"] > 0
        assert quick_payload["fluid_speedup"] > 0

    def test_fluid_records_report_events_per_s(self, quick_payload):
        fluid = [r for r in quick_payload["records"]
                 if r["scenario"].startswith("fluid_events[")]
        assert {r["backend"] for r in fluid} == {
            "reference", "incremental",
        }
        for record in fluid:
            # Explicit events_per_s; cells_per_s is pinned to zero —
            # the fluid model has no cells (the old schema leaked
            # completed flows/s under that key).
            assert record["events_per_s"] > 0
            assert record["events"] > 0
            assert record["cells_per_s"] == 0.0

    def test_sweep_reports_real_cell_throughput(self, quick_payload):
        sweep = next(r for r in quick_payload["records"]
                     if r["scenario"] == "sweep_e2e")
        # The sweep delivers cells, so its throughput cannot be the
        # 0.0 placeholder it once was — and each job reports goodput.
        assert sweep["cells_per_s"] > 0
        assert len(sweep["goodputs"]) == sweep["jobs"]
        assert all(g > 0 for g in sweep["goodputs"])

    def test_phase_totals_attached_to_micro(self, quick_payload):
        fast = next(r for r in quick_payload["records"]
                    if r["scenario"] == "micro_epoch_loop[fast]")
        totals = fast["phase_totals_s"]
        # The profiled pass must cover the epoch loop's phases.
        assert {"deliver", "control", "transmit"} <= set(totals)
        assert all(v >= 0 for v in totals.values())

    def test_payload_is_json_round_trippable(self, quick_payload, tmp_path):
        path = write_payload(quick_payload, str(tmp_path / "bench.json"))
        reloaded = json.loads(Path(path).read_text())
        validate_payload(reloaded)
        assert reloaded["micro_speedup"] == quick_payload["micro_speedup"]


class TestValidation:
    def test_rejects_wrong_schema(self, quick_payload):
        bad = dict(quick_payload, schema="sirius-bench/0")
        with pytest.raises(ValueError, match="schema"):
            validate_payload(bad)

    def test_rejects_empty_records(self, quick_payload):
        with pytest.raises(ValueError, match="records"):
            validate_payload(dict(quick_payload, records=[]))

    def test_rejects_missing_field(self, quick_payload):
        records = [dict(r) for r in quick_payload["records"]]
        del records[0]["wall_s"]
        with pytest.raises(ValueError, match="wall_s"):
            validate_payload(dict(quick_payload, records=records))

    def test_rejects_missing_scenario(self, quick_payload):
        records = [r for r in quick_payload["records"]
                   if r["scenario"] != "fluid_events[incremental]"]
        with pytest.raises(ValueError, match="fluid_events"):
            validate_payload(dict(quick_payload, records=records))

    def test_rejects_fluid_record_without_events_per_s(self, quick_payload):
        records = [dict(r) for r in quick_payload["records"]]
        for record in records:
            record.pop("events_per_s", None)
        with pytest.raises(ValueError, match="events_per_s"):
            validate_payload(dict(quick_payload, records=records))

    def test_rejects_v3_payload_without_fluid_speedup(self, quick_payload):
        bad = dict(quick_payload)
        bad.pop("fluid_speedup")
        with pytest.raises(ValueError, match="fluid_speedup"):
            validate_payload(bad)

    def test_rejects_missing_vectorized_scenario(self, quick_payload):
        records = [r for r in quick_payload["records"]
                   if r["scenario"] != "micro_epoch_loop[vectorized]"]
        with pytest.raises(ValueError, match="vectorized"):
            validate_payload(dict(quick_payload, records=records))

    def test_full_payload_requires_scale_scenarios(self, quick_payload):
        # A non-quick v2 payload without the paper-scale records is
        # incomplete by definition.
        with pytest.raises(ValueError, match="scale_"):
            validate_payload(dict(quick_payload, quick=False))

    def test_rejects_scale_4096_over_memory_budget(self, quick_payload):
        records = [dict(r) for r in quick_payload["records"]]
        records.append({
            "scenario": "scale_512[vectorized]", "nodes": 512,
            "epochs": 10_000, "wall_s": 1.0, "cells_per_s": 1.0,
            "peak_rss_kb": 50_000,
        })
        records.append({
            "scenario": "scale_4096[vectorized]", "nodes": 4096,
            "epochs": 10_000, "wall_s": 1.0, "cells_per_s": 1.0,
            "peak_rss_kb": VECTORIZED_4096_RSS_BUDGET_KB + 1,
        })
        with pytest.raises(ValueError, match="slab budget"):
            validate_payload(dict(quick_payload, quick=False,
                                  records=records))

    def test_accepts_v1_payload_without_vectorized(self, quick_payload):
        # Committed v1 baselines predate the vectorized backend and
        # the split fluid scenarios; they must keep validating without
        # those records or speedup fields.
        records = [dict(r) for r in quick_payload["records"]
                   if r["scenario"] != "micro_epoch_loop[vectorized]"
                   and r["scenario"] != "fluid_events[incremental]"]
        for record in records:
            if record["scenario"] == "fluid_events[reference]":
                record["scenario"] = "fluid_events"
        v1 = dict(quick_payload, schema=BENCH_SCHEMA_V1, records=records)
        v1.pop("vectorized_speedup")
        v1.pop("fluid_speedup")
        validate_payload(v1)

    def test_accepts_v2_payload_with_single_fluid_record(self, quick_payload):
        # Committed v2 baselines have one fluid_events record with no
        # events_per_s field and no fluid_speedup headline.
        records = [dict(r) for r in quick_payload["records"]
                   if r["scenario"] != "fluid_events[incremental]"]
        for record in records:
            if record["scenario"] == "fluid_events[reference]":
                record["scenario"] = "fluid_events"
                record.pop("events_per_s")
        v2 = dict(quick_payload, schema=BENCH_SCHEMA_V2, records=records)
        v2.pop("fluid_speedup")
        validate_payload(v2)


class TestCommittedBaseline:
    def test_baseline_exists_and_validates(self):
        baselines = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert baselines, "no committed BENCH_<date>.json baseline"
        for path in baselines:
            payload = json.loads(path.read_text())
            validate_payload(payload)

    def test_baseline_records_backend_wins(self):
        # The acceptance bars: >= 2x cells/s for the fast path and
        # >= 3x for the vectorized backend over the reference on the
        # pinned (non-quick) micro scenario.
        full = [
            json.loads(path.read_text())
            for path in REPO_ROOT.glob("BENCH_*.json")
        ]
        full = [p for p in full if not p["quick"]]
        assert full, "no full-scale committed baseline"
        for payload in full:
            assert payload["micro_speedup"] >= 2.0
            if payload["schema"] in (BENCH_SCHEMA, BENCH_SCHEMA_V2):
                assert payload["vectorized_speedup"] >= 3.0

    def test_baseline_records_fluid_win(self):
        # The incremental fluid engine's acceptance bar: the committed
        # full-scale v3 baseline must show >= 10x events/s over the
        # reference loop on the bench matrix workload.
        v3 = [
            json.loads(path.read_text())
            for path in REPO_ROOT.glob("BENCH_*.json")
        ]
        v3 = [p for p in v3
              if p["schema"] == BENCH_SCHEMA and not p["quick"]]
        assert v3, "no committed v3 full-scale baseline"
        for payload in v3:
            assert payload["fluid_speedup"] >= 10.0

    def test_v2_baseline_covers_paper_scale(self):
        v2 = [
            json.loads(path.read_text())
            for path in REPO_ROOT.glob("BENCH_*.json")
        ]
        v2 = [p for p in v2
              if p["schema"] in (BENCH_SCHEMA, BENCH_SCHEMA_V2)
              and not p["quick"]]
        assert v2, "no committed v2+ full-scale baseline"
        for payload in v2:
            scale = {r["scenario"]: r for r in payload["records"]
                     if r["scenario"].startswith("scale_")}
            assert set(scale) == {"scale_512[vectorized]",
                                  "scale_4096[vectorized]"}
            big = scale["scale_4096[vectorized]"]
            # The headline acceptance run: a 4096-node, ~10k-epoch
            # vectorized simulation in far under five minutes.
            assert big["epochs"] >= 9000
            assert big["wall_s"] < 300
            assert big["peak_rss_kb"] <= VECTORIZED_4096_RSS_BUDGET_KB
