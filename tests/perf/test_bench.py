"""The bench harness emits schema-valid, self-consistent payloads."""

import json
from pathlib import Path

import pytest

from repro.perf import BENCH_SCHEMA, run_bench, validate_payload, write_payload

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def quick_payload():
    return run_bench(quick=True, workers=2)


class TestQuickRun:
    def test_schema_and_validation(self, quick_payload):
        assert quick_payload["schema"] == BENCH_SCHEMA
        assert quick_payload["quick"] is True
        validate_payload(quick_payload)

    def test_all_scenarios_present(self, quick_payload):
        scenarios = {r["scenario"] for r in quick_payload["records"]}
        assert scenarios == {
            "micro_epoch_loop[fast]",
            "micro_epoch_loop[reference]",
            "fluid_events",
            "sweep_e2e",
        }

    def test_phase_totals_attached_to_micro(self, quick_payload):
        fast = next(r for r in quick_payload["records"]
                    if r["scenario"] == "micro_epoch_loop[fast]")
        totals = fast["phase_totals_s"]
        # The profiled pass must cover the epoch loop's phases.
        assert {"deliver", "control", "transmit"} <= set(totals)
        assert all(v >= 0 for v in totals.values())

    def test_payload_is_json_round_trippable(self, quick_payload, tmp_path):
        path = write_payload(quick_payload, str(tmp_path / "bench.json"))
        reloaded = json.loads(Path(path).read_text())
        validate_payload(reloaded)
        assert reloaded["micro_speedup"] == quick_payload["micro_speedup"]


class TestValidation:
    def test_rejects_wrong_schema(self, quick_payload):
        bad = dict(quick_payload, schema="sirius-bench/0")
        with pytest.raises(ValueError, match="schema"):
            validate_payload(bad)

    def test_rejects_empty_records(self, quick_payload):
        with pytest.raises(ValueError, match="records"):
            validate_payload(dict(quick_payload, records=[]))

    def test_rejects_missing_field(self, quick_payload):
        records = [dict(r) for r in quick_payload["records"]]
        del records[0]["wall_s"]
        with pytest.raises(ValueError, match="wall_s"):
            validate_payload(dict(quick_payload, records=records))

    def test_rejects_missing_scenario(self, quick_payload):
        records = [r for r in quick_payload["records"]
                   if r["scenario"] != "fluid_events"]
        with pytest.raises(ValueError, match="fluid_events"):
            validate_payload(dict(quick_payload, records=records))


class TestCommittedBaseline:
    def test_baseline_exists_and_validates(self):
        baselines = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert baselines, "no committed BENCH_<date>.json baseline"
        for path in baselines:
            payload = json.loads(path.read_text())
            validate_payload(payload)

    def test_baseline_records_fast_path_win(self):
        # The acceptance bar for the fast path: >= 2x cells/s over the
        # reference on the pinned (non-quick) micro scenario.
        full = [
            json.loads(path.read_text())
            for path in REPO_ROOT.glob("BENCH_*.json")
        ]
        full = [p for p in full if not p["quick"]]
        assert full, "no full-scale committed baseline"
        for payload in full:
            assert payload["micro_speedup"] >= 2.0
