"""Congestion-control protocol parameters and grant test (paper §4.3)."""

import pytest

from repro.core import CongestionConfig
from repro.core.congestion import (
    REQUEST_ROUND_TRIP_EPOCHS,
    may_grant,
    max_queue_delay_epochs,
)


class TestConfig:
    def test_paper_default_q_is_4(self):
        assert CongestionConfig().queue_threshold == 4

    def test_minimum_feasible_q_is_2(self):
        assert CongestionConfig(queue_threshold=2).queue_threshold == 2
        with pytest.raises(ValueError):
            CongestionConfig(queue_threshold=1)

    def test_ideal_mode_ignores_threshold(self):
        # SIRIUS (IDEAL) uses unbounded queues; Q is irrelevant.
        config = CongestionConfig(queue_threshold=0, ideal=True)
        assert config.ideal

    def test_round_trip_is_two_epochs(self):
        # request rides epoch e, grant rides e+1, applied at e+2.
        assert REQUEST_ROUND_TRIP_EPOCHS == 2


class TestMayGrant:
    def test_grants_below_threshold(self):
        assert may_grant(queued=0, outstanding=0, threshold=4)
        assert may_grant(queued=2, outstanding=1, threshold=4)

    def test_denies_at_threshold(self):
        assert not may_grant(queued=3, outstanding=1, threshold=4)
        assert not may_grant(queued=4, outstanding=0, threshold=4)

    def test_outstanding_grants_count_against_queue(self):
        # §4.3: "the sum of the packets queued for D and the number of
        # outstanding grants for D is lower than Q".
        assert not may_grant(queued=0, outstanding=4, threshold=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            may_grant(-1, 0, 4)
        with pytest.raises(ValueError):
            may_grant(0, -1, 4)
        with pytest.raises(ValueError):
            may_grant(0, 0, 0)


class TestDelayBound:
    def test_bound_equals_threshold(self):
        assert max_queue_delay_epochs(4) == 4
        assert max_queue_delay_epochs(2) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            max_queue_delay_epochs(0)
