"""DRRM vs random request/grant selection (paper §4.3, [13])."""

import random

import pytest

from repro.core import CongestionConfig, Flow, SiriusNetwork, SiriusNode


def make_node(selection, node=0, n_nodes=8, seed=1):
    return SiriusNode(
        node, n_nodes, CongestionConfig(selection=selection),
        random.Random(seed),
    )


class TestConfig:
    def test_default_is_drrm(self):
        assert CongestionConfig().selection == "drrm"

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            CongestionConfig(selection="fifo")


class TestDrrmRequests:
    def test_request_offset_rotates_between_epochs(self):
        node = make_node("drrm")
        from repro.core.cell import Cell

        node.apply_grants_and_expiries()
        node.enqueue_local(Cell(1, 0, 0, 3))
        first = node.generate_requests()
        # Expire and re-request: the intermediate advances.
        node.apply_grants_and_expiries()
        node.generate_requests()
        node.apply_grants_and_expiries()
        second = node.generate_requests()
        assert first[0][1] == second[0][1] == 3
        assert first[0][0] != second[0][0]

    def test_different_nodes_desynchronized(self):
        from repro.core.cell import Cell

        requests = {}
        for node_id in (1, 2):
            node = make_node("drrm", node=node_id)
            node.enqueue_local(Cell(1, 0, node_id, 5))
            requests[node_id] = node.generate_requests()[0][0]
        assert requests[1] != requests[2]

    def test_deterministic(self):
        from repro.core.cell import Cell

        def run():
            node = make_node("drrm")
            for seq in range(5):
                node.enqueue_local(Cell(1, seq, 0, 3))
            return node.generate_requests()

        assert run() == run()


class TestDrrmGrants:
    def test_grant_pointer_rotates_across_sources(self):
        node = make_node("drrm", node=7)
        node.request_inbox = [(1, 3), (2, 3), (4, 3)]
        first = node.decide_grants(1)[0][0]
        # Drain the queue bound so the next grant is admissible.
        node.outstanding.clear()
        node.request_inbox = [(1, 3), (2, 3), (4, 3)]
        second = node.decide_grants(1)[0][0]
        assert first != second
        assert second > first or second < first  # rotated


class TestThroughputComparison:
    def _saturation_goodput(self, selection):
        n = 16
        net = SiriusNetwork(
            n, 4, uplink_multiplier=1.0, seed=3,
            config=CongestionConfig(selection=selection),
        )
        rng = random.Random(0)
        flows = []
        fid = 0
        for src in range(n):
            for _ in range(60):
                dst = rng.randrange(n - 1)
                if dst >= src:
                    dst += 1
                flows.append(Flow(fid, src, dst, size_bits=20_000,
                                  arrival_time=0.0))
                fid += 1
        result = net.run(flows)
        return result.normalized_goodput

    def test_both_selections_sustain_saturation(self):
        drrm = self._saturation_goodput("drrm")
        rand = self._saturation_goodput("random")
        # Both within a sane band of each other; neither collapses.
        assert drrm > 0.15 and rand > 0.15
        assert abs(drrm - rand) / max(drrm, rand) < 0.25
