"""The active-set fast path is bit-identical to the reference path.

The fast path (``SiriusNetwork(fast_path=True)``, the default) replaces
the reference's all-nodes scans with sparse active-set iteration, table
lookups and slab cell construction — but shares the reference's single
RNG stream and visit order, so a seeded run must produce *exactly* the
same ``SimulationResult``, not merely a statistically similar one.
These tests pin that contract across every scheduling mode the
simulator supports, plus a failure/recovery scenario; the fluid
simulator's precomputed-resources fast path gets the same treatment.
"""

import pytest

from repro import (
    CongestionConfig,
    FailurePlan,
    FlowWorkload,
    FluidNetwork,
    SiriusNetwork,
    WorkloadConfig,
    pod_map_for,
)
from repro.core.fastpath import FAST_PATH_ENV, resolve_fast_path
from repro.units import KILOBYTE, MEGABYTE

N_NODES, GRATING = 12, 4


def _workload(bandwidth, *, n_flows=60, load=0.4, seed=5,
              n_nodes=N_NODES):
    return FlowWorkload(WorkloadConfig(
        n_nodes=n_nodes,
        load=load,
        node_bandwidth_bps=bandwidth,
        mean_flow_bits=20 * KILOBYTE,
        truncation_bits=MEGABYTE,
        seed=seed,
    )).generate(n_flows)


def _fingerprint(result):
    """Everything a SimulationResult observably says about a run."""
    return (
        result.epochs,
        result.duration_s,
        result.delivered_bits,
        result.offered_bits,
        result.peak_fwd_cells,
        result.peak_local_cells,
        result.peak_reorder_cells,
        result.failed_flows,
        result.retransmitted_cells,
        tuple(
            (f.flow_id, f.delivered_cells, f.completion_time)
            for f in result.flows
        ),
    )


def _run_pair(*, seed=1, workload_seed=5, make_plan=None, **net_kwargs):
    """One seeded run per path; returns (fast, reference) fingerprints.

    ``make_plan`` is a factory, not a plan: a ``FailurePlan`` is
    stateful (it tracks fired events and the failed set), so each run
    needs its own instance.
    """
    results = []
    for fast in (True, False):
        net = SiriusNetwork(N_NODES, GRATING, uplink_multiplier=1.5,
                            seed=seed, fast_path=fast, **net_kwargs)
        flows = _workload(net.reference_node_bandwidth_bps,
                          seed=workload_seed)
        plan = make_plan() if make_plan is not None else None
        results.append(net.run(flows, failure_plan=plan,
                               check_invariants=True))
    return tuple(_fingerprint(r) for r in results)


CONFIG_CASES = {
    "drrm": dict(config=CongestionConfig(selection="drrm")),
    "random-selection": dict(config=CongestionConfig(selection="random")),
    "ideal": dict(config=CongestionConfig(ideal=True)),
    "single-grant": dict(
        config=CongestionConfig(max_grants_per_destination=1)
    ),
    "bounded-local": dict(local_capacity_cells=32),
    "track-reorder": dict(track_reorder=True),
}


class TestSiriusEquivalence:
    @pytest.mark.parametrize("case", sorted(CONFIG_CASES))
    def test_identical_results_per_config(self, case):
        fast, reference = _run_pair(**CONFIG_CASES[case])
        assert fast == reference

    @pytest.mark.parametrize("seed", [1, 7])
    def test_identical_results_across_seeds(self, seed):
        fast, reference = _run_pair(seed=seed, workload_seed=seed + 4)
        assert fast == reference

    def test_identical_results_under_failure_and_recovery(self):
        fast, reference = _run_pair(make_plan=lambda: (
            FailurePlan.single_failure(3, at_epoch=30, recover_at=60)
        ))
        assert fast == reference

    def test_fast_path_on_by_default(self):
        assert SiriusNetwork(8, 4).fast_path is resolve_fast_path(None)


class TestFluidEquivalence:
    def _pair(self, **net_kwargs):
        bandwidth = 4e11
        results = []
        for fast in (True, False):
            net = FluidNetwork(N_NODES, bandwidth, fast_path=fast,
                               **net_kwargs)
            flows = _workload(bandwidth, n_flows=120, load=0.6)
            results.append(net.run(flows))
        return results

    @staticmethod
    def _fluid_fingerprint(result):
        return (
            result.duration_s,
            result.delivered_bits,
            tuple(
                (f.flow_id, f.completion_time) for f in result.flows
            ),
        )

    def test_flat_network_identical(self):
        fast, reference = self._pair()
        assert (self._fluid_fingerprint(fast)
                == self._fluid_fingerprint(reference))

    def test_oversubscribed_pods_identical(self):
        bandwidth = 4e11
        pod_kwargs = dict(
            pod_map=pod_map_for(N_NODES, 4),
            pod_bandwidth_bps=4 * bandwidth / 3.0,
        )
        fast, reference = self._pair(**pod_kwargs)
        assert (self._fluid_fingerprint(fast)
                == self._fluid_fingerprint(reference))


class TestFastPathResolution:
    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAST_PATH_ENV, "0")
        assert resolve_fast_path(True) is True
        monkeypatch.setenv(FAST_PATH_ENV, "1")
        assert resolve_fast_path(False) is False

    def test_env_off_values(self, monkeypatch):
        for value in ("0", "false", "off", "no", "reference", "FALSE"):
            monkeypatch.setenv(FAST_PATH_ENV, value)
            assert resolve_fast_path(None) is False, value

    def test_env_on_values_and_default(self, monkeypatch):
        monkeypatch.delenv(FAST_PATH_ENV, raising=False)
        assert resolve_fast_path(None) is True
        monkeypatch.setenv(FAST_PATH_ENV, "1")
        assert resolve_fast_path(None) is True

    def test_env_reaches_network_constructor(self, monkeypatch):
        monkeypatch.setenv(FAST_PATH_ENV, "reference")
        assert SiriusNetwork(8, 4).fast_path is False
        assert FluidNetwork(8, 4e11).fast_path is False
