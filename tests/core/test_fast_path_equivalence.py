"""Every simulation backend is bit-identical to the reference loop.

The cell simulator keeps three interchangeable epoch-loop strategies
(:mod:`repro.core.backend`): the all-nodes ``reference`` loop, the
active-set ``fast`` path (the default) and the numpy-slab
``vectorized`` engine.  All three share the reference's single RNG
stream and visit order, so a seeded run must produce *exactly* the
same ``SimulationResult``, not merely a statistically similar one.
These tests pin that contract three ways across every scheduling mode
the simulator supports, plus a failure/recovery scenario and a scale
ladder (16/64/256 nodes); the fluid simulator's precomputed-resources
fast path gets the same treatment.
"""

import pytest

from repro import (
    CongestionConfig,
    FailurePlan,
    FlowWorkload,
    FluidNetwork,
    SiriusNetwork,
    WorkloadConfig,
    pod_map_for,
)
from repro.core.backend import BACKEND_ENV, BACKENDS, resolve_backend
from repro.core.fastpath import FAST_PATH_ENV, resolve_fast_path
from repro.units import KILOBYTE, MEGABYTE

N_NODES, GRATING = 12, 4


def _workload(bandwidth, *, n_flows=60, load=0.4, seed=5,
              n_nodes=N_NODES):
    return FlowWorkload(WorkloadConfig(
        n_nodes=n_nodes,
        load=load,
        node_bandwidth_bps=bandwidth,
        mean_flow_bits=20 * KILOBYTE,
        truncation_bits=MEGABYTE,
        seed=seed,
    )).generate(n_flows)


def _fingerprint(result):
    """Everything a SimulationResult observably says about a run."""
    return (
        result.epochs,
        result.duration_s,
        result.delivered_bits,
        result.offered_bits,
        result.peak_fwd_cells,
        result.peak_local_cells,
        result.peak_reorder_cells,
        result.failed_flows,
        result.retransmitted_cells,
        tuple(
            (f.flow_id, f.delivered_cells, f.completion_time)
            for f in result.flows
        ),
    )


def _run_backends(*, seed=1, workload_seed=5, make_plan=None,
                  n_nodes=N_NODES, grating=GRATING, n_flows=60,
                  **net_kwargs):
    """One seeded run per backend; returns fingerprints keyed by name.

    ``make_plan`` is a factory, not a plan: a ``FailurePlan`` is
    stateful (it tracks fired events and the failed set), so each run
    needs its own instance.
    """
    prints = {}
    for backend in BACKENDS:
        net = SiriusNetwork(n_nodes, grating, uplink_multiplier=1.5,
                            seed=seed, backend=backend, **net_kwargs)
        flows = _workload(net.reference_node_bandwidth_bps,
                          seed=workload_seed, n_nodes=n_nodes,
                          n_flows=n_flows)
        plan = make_plan() if make_plan is not None else None
        prints[backend] = _fingerprint(net.run(
            flows, failure_plan=plan, check_invariants=True))
    return prints


def _assert_all_equal(prints):
    reference = prints["reference"]
    for backend, fingerprint in prints.items():
        assert fingerprint == reference, (
            f"{backend} backend diverged from reference"
        )


CONFIG_CASES = {
    "drrm": dict(config=CongestionConfig(selection="drrm")),
    "random-selection": dict(config=CongestionConfig(selection="random")),
    "ideal": dict(config=CongestionConfig(ideal=True)),
    "single-grant": dict(
        config=CongestionConfig(max_grants_per_destination=1)
    ),
    "exclude-dst-intermediate": dict(
        config=CongestionConfig(exclude_destination_intermediate=True)
    ),
    "bounded-local": dict(local_capacity_cells=32),
    "track-reorder": dict(track_reorder=True),
}

#: The scale ladder: (nodes, grating ports, flows).  Flow counts shrink
#: as the topology grows to keep the reference runs affordable.
SCALE_CASES = {
    "16-node": (16, 4, 60),
    "64-node": (64, 8, 60),
    "256-node": (256, 16, 40),
}


class TestSiriusEquivalence:
    @pytest.mark.parametrize("case", sorted(CONFIG_CASES))
    def test_identical_results_per_config(self, case):
        _assert_all_equal(_run_backends(**CONFIG_CASES[case]))

    @pytest.mark.parametrize("seed", [1, 7])
    def test_identical_results_across_seeds(self, seed):
        _assert_all_equal(_run_backends(seed=seed,
                                        workload_seed=seed + 4))

    def test_identical_results_under_failure_and_recovery(self):
        _assert_all_equal(_run_backends(make_plan=lambda: (
            FailurePlan.single_failure(3, at_epoch=30, recover_at=60)
        )))

    def test_fast_path_on_by_default(self):
        assert SiriusNetwork(8, 4).fast_path is resolve_fast_path(None)


class TestScaleParity:
    """The three-way contract holds as the topology grows."""

    @pytest.mark.parametrize("case", sorted(SCALE_CASES))
    def test_identical_results_at_scale(self, case):
        nodes, grating, n_flows = SCALE_CASES[case]
        _assert_all_equal(_run_backends(
            n_nodes=nodes, grating=grating, n_flows=n_flows,
        ))

    def test_bounded_local_and_reorder_at_scale(self):
        nodes, grating, n_flows = SCALE_CASES["64-node"]
        _assert_all_equal(_run_backends(
            n_nodes=nodes, grating=grating, n_flows=n_flows,
            local_capacity_cells=32, track_reorder=True,
        ))

    def test_failure_and_recovery_at_scale(self):
        nodes, grating, n_flows = SCALE_CASES["64-node"]
        _assert_all_equal(_run_backends(
            n_nodes=nodes, grating=grating, n_flows=n_flows,
            make_plan=lambda: FailurePlan.single_failure(
                5, at_epoch=20, recover_at=50
            ),
        ))


class TestBackendResolution:
    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "reference")
        assert resolve_backend("vectorized") == "vectorized"
        assert SiriusNetwork(8, 4, backend="fast").backend == "fast"

    def test_explicit_backend_wins_over_fast_path(self):
        assert resolve_backend("vectorized", fast_path=False) == "vectorized"
        net = SiriusNetwork(8, 4, backend="reference", fast_path=True)
        assert net.backend == "reference"

    def test_legacy_fast_path_argument_maps(self):
        assert resolve_backend(None, fast_path=True) == "fast"
        assert resolve_backend(None, fast_path=False) == "reference"

    def test_env_selects_backend(self, monkeypatch):
        for name in BACKENDS:
            monkeypatch.setenv(BACKEND_ENV, name)
            assert resolve_backend(None) == name
            assert SiriusNetwork(8, 4).backend == name

    def test_env_wins_over_legacy_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "vectorized")
        monkeypatch.setenv(FAST_PATH_ENV, "0")
        assert resolve_backend(None) == "vectorized"

    def test_legacy_env_still_honoured(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setenv(FAST_PATH_ENV, "0")
        assert resolve_backend(None) == "reference"
        monkeypatch.setenv(FAST_PATH_ENV, "1")
        assert resolve_backend(None) == "fast"

    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.delenv(FAST_PATH_ENV, raising=False)
        assert resolve_backend(None) == "fast"

    def test_invalid_names_raise(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("warp")
        monkeypatch.setenv(BACKEND_ENV, "warp")
        with pytest.raises(ValueError, match=BACKEND_ENV):
            resolve_backend(None)

    def test_fast_path_attribute_tracks_backend(self):
        assert SiriusNetwork(8, 4, backend="vectorized").fast_path is True
        assert SiriusNetwork(8, 4, backend="fast").fast_path is True
        assert SiriusNetwork(8, 4, backend="reference").fast_path is False


class TestFluidEquivalence:
    def _pair(self, **net_kwargs):
        bandwidth = 4e11
        results = []
        for fast in (True, False):
            net = FluidNetwork(N_NODES, bandwidth, fast_path=fast,
                               **net_kwargs)
            flows = _workload(bandwidth, n_flows=120, load=0.6)
            results.append(net.run(flows))
        return results

    @staticmethod
    def _fluid_fingerprint(result):
        return (
            result.duration_s,
            result.delivered_bits,
            tuple(
                (f.flow_id, f.completion_time) for f in result.flows
            ),
        )

    def test_flat_network_identical(self):
        fast, reference = self._pair()
        assert (self._fluid_fingerprint(fast)
                == self._fluid_fingerprint(reference))

    def test_oversubscribed_pods_identical(self):
        bandwidth = 4e11
        pod_kwargs = dict(
            pod_map=pod_map_for(N_NODES, 4),
            pod_bandwidth_bps=4 * bandwidth / 3.0,
        )
        fast, reference = self._pair(**pod_kwargs)
        assert (self._fluid_fingerprint(fast)
                == self._fluid_fingerprint(reference))


class TestFastPathResolution:
    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAST_PATH_ENV, "0")
        assert resolve_fast_path(True) is True
        monkeypatch.setenv(FAST_PATH_ENV, "1")
        assert resolve_fast_path(False) is False

    def test_env_off_values(self, monkeypatch):
        for value in ("0", "false", "off", "no", "reference", "FALSE"):
            monkeypatch.setenv(FAST_PATH_ENV, value)
            assert resolve_fast_path(None) is False, value

    def test_env_on_values_and_default(self, monkeypatch):
        monkeypatch.delenv(FAST_PATH_ENV, raising=False)
        assert resolve_fast_path(None) is True
        monkeypatch.setenv(FAST_PATH_ENV, "1")
        assert resolve_fast_path(None) is True

    def test_env_reaches_network_constructor(self, monkeypatch):
        monkeypatch.setenv(FAST_PATH_ENV, "reference")
        assert SiriusNetwork(8, 4).fast_path is False
        assert FluidNetwork(8, 4e11).fast_path is False
