"""Destination reorder buffers (paper §4.2, Fig 10d)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import ReorderBuffer
from repro.core.reorder import ReorderTracker


class TestReorderBuffer:
    def test_in_order_passthrough(self):
        buf = ReorderBuffer(1)
        assert buf.accept(0) == [0]
        assert buf.accept(1) == [1]
        assert buf.peak_cells == 0

    def test_out_of_order_held_then_released(self):
        buf = ReorderBuffer(1)
        assert buf.accept(2) == []
        assert buf.accept(1) == []
        assert buf.buffered_cells == 2
        assert buf.accept(0) == [0, 1, 2]
        assert buf.buffered_cells == 0
        assert buf.peak_cells == 2

    def test_duplicate_rejected(self):
        buf = ReorderBuffer(1)
        buf.accept(0)
        with pytest.raises(ValueError):
            buf.accept(0)

    def test_duplicate_early_rejected(self):
        buf = ReorderBuffer(1)
        buf.accept(3)
        with pytest.raises(ValueError):
            buf.accept(3)

    def test_peak_bytes(self):
        buf = ReorderBuffer(1)
        buf.accept(5)
        buf.accept(6)
        assert buf.peak_bytes(562.5) == pytest.approx(2 * 562.5)
        with pytest.raises(ValueError):
            buf.peak_bytes(0)

    @given(st.permutations(list(range(12))))
    def test_any_permutation_releases_in_order(self, order):
        buf = ReorderBuffer(1)
        released = []
        for seq in order:
            released.extend(buf.accept(seq))
        assert released == list(range(12))
        assert buf.buffered_cells == 0


class TestTracker:
    def test_tracks_global_peak(self):
        tracker = ReorderTracker()
        tracker.accept(1, 1)   # held
        tracker.accept(2, 2)   # held (2 cells would be wrong: new flow)
        tracker.accept(2, 3)   # held
        assert tracker.peak_flow_cells == 2  # flow 2 held {2, 3}

    def test_finish_flow_requires_empty_buffer(self):
        tracker = ReorderTracker()
        tracker.accept(1, 0)
        tracker.finish_flow(1)
        assert tracker.active_flows == 0
        tracker.accept(2, 1)
        with pytest.raises(RuntimeError):
            tracker.finish_flow(2)

    def test_finish_unknown_flow_is_noop(self):
        ReorderTracker().finish_flow(99)
