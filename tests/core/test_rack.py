"""Rack deployment: credit flow control and server-level workloads (§4.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cell import Flow
from repro.core.rack import (
    CreditLink,
    RackConfig,
    RackDeployment,
    RackSwitch,
    simulate_credit_hop,
)


class TestCreditLink:
    def test_sender_stalls_at_zero_credits(self):
        link = CreditLink(2)
        assert link.try_send()
        assert link.try_send()
        assert not link.try_send()
        assert link.stalled_attempts == 1

    def test_drain_returns_credits(self):
        link = CreditLink(2)
        link.try_send()
        link.try_send()
        assert link.drain(1) == 1
        assert link.try_send()

    def test_drain_capped_at_buffer(self):
        link = CreditLink(4)
        link.try_send()
        assert link.drain(10) == 1
        assert link.available == 4

    def test_lossless_invariant(self):
        link = CreditLink(3)
        for _ in range(10):
            link.try_send()
            assert link.is_lossless
        link.drain(10)
        assert link.is_lossless

    def test_utilization(self):
        link = CreditLink(4)
        link.try_send()
        link.try_send()
        assert link.utilization() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CreditLink(0)
        with pytest.raises(ValueError):
            CreditLink(2).drain(-1)

    @given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 5)),
                        max_size=100))
    def test_never_overruns_property(self, ops):
        link = CreditLink(4)
        for send, drain in ops:
            if send:
                link.try_send()
            link.drain(drain)
            assert link.is_lossless


class TestRackSwitch:
    def test_admission_consumes_local_space(self):
        switch = RackSwitch(0, RackConfig(servers_per_rack=2,
                                          credits_per_server=8),
                            local_capacity_cells=4)
        admitted = switch.offer(0, 10)
        assert admitted == 4  # LOCAL full before credits run out
        assert switch.local_occupancy == 4

    def test_credit_limit_binds_per_server(self):
        switch = RackSwitch(0, RackConfig(servers_per_rack=2,
                                          credits_per_server=2),
                            local_capacity_cells=100)
        assert switch.offer(0, 10) == 2
        assert switch.backpressure_active
        # The other server still has credits.
        assert switch.offer(1, 1) == 1

    def test_uplink_drain_returns_credits(self):
        switch = RackSwitch(0, RackConfig(servers_per_rack=1,
                                          credits_per_server=2),
                            local_capacity_cells=100)
        switch.offer(0, 2)
        assert switch.uplink_drain(2) == 2
        assert switch.offer(0, 2) == 2  # credits came back

    def test_peak_tracking(self):
        switch = RackSwitch(0, RackConfig(servers_per_rack=1,
                                          credits_per_server=8),
                            local_capacity_cells=100)
        switch.offer(0, 5)
        switch.uplink_drain(5)
        switch.offer(0, 3)
        assert switch.peak_local == 5

    def test_validation(self):
        config = RackConfig(servers_per_rack=4)
        with pytest.raises(ValueError):
            RackSwitch(0, config, local_capacity_cells=2)
        switch = RackSwitch(0, config)
        with pytest.raises(ValueError):
            switch.offer(9, 1)
        with pytest.raises(ValueError):
            switch.offer(0, -1)
        with pytest.raises(ValueError):
            switch.uplink_drain(-1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RackConfig(servers_per_rack=0)
        with pytest.raises(ValueError):
            RackConfig(server_link_bps=0)
        with pytest.raises(ValueError):
            RackConfig(credits_per_server=0)


class TestCreditHopSimulation:
    def test_underloaded_hop_rarely_stalls(self):
        stats = simulate_credit_hop(
            offered_cells_per_slot=0.5, drain_cells_per_slot=1.0,
            credits=16,
        )
        assert stats["stall_fraction"] < 0.01
        assert stats["delivered"] + stats["in_buffer"] == pytest.approx(
            stats["offered"] - stats["stall_fraction"] * stats["offered"],
            rel=0.02,
        )

    def test_overloaded_hop_backpressures_losslessly(self):
        stats = simulate_credit_hop(
            offered_cells_per_slot=2.0, drain_cells_per_slot=1.0,
            credits=8,
        )
        assert stats["stall_fraction"] > 0.3  # heavy stalling
        assert stats["peak_buffer_cells"] <= 8  # never overruns

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_credit_hop(0.0, 1.0, 4)


class TestRackDeployment:
    def _flows(self, deployment, n=60, seed=5):
        import random

        rng = random.Random(seed)
        flows = []
        time = 0.0
        for fid in range(n):
            time += rng.expovariate(2e5)
            src = rng.randrange(deployment.n_servers)
            dst = rng.randrange(deployment.n_servers - 1)
            if dst >= src:
                dst += 1
            flows.append(Flow(fid, src, dst, size_bits=40_000,
                              arrival_time=time))
        return flows

    def test_server_addressing(self):
        deployment = RackDeployment(
            8, 4, rack_config=RackConfig(servers_per_rack=4),
        )
        assert deployment.n_servers == 32
        assert deployment.rack_of(0) == 0
        assert deployment.rack_of(5) == 1
        with pytest.raises(ValueError):
            deployment.rack_of(32)

    def test_intra_rack_flows_bypass_the_optical_core(self):
        deployment = RackDeployment(
            4, 2, rack_config=RackConfig(servers_per_rack=8),
            uplink_multiplier=1.0,
        )
        flows = [
            Flow(0, 0, 1, size_bits=10_000, arrival_time=0.0),   # same rack
            Flow(1, 0, 9, size_bits=10_000, arrival_time=0.0),   # cross rack
        ]
        result = deployment.run(flows)
        assert result.intra_rack is not None
        assert len(result.intra_rack.flows) == 1
        assert result.intra_rack.flows[0].flow_id == 0
        # Only the cross-rack flow consumed optical-core resources, and
        # it was remapped to rack endpoints (0 -> rack 1).
        assert len(result.inter_rack.flows) == 1
        remapped = result.inter_rack.flows[0]
        assert (remapped.src, remapped.dst) == (0, 1)
        assert result.intra_rack_fraction == pytest.approx(0.5)
        for flow in result.all_flows:
            assert flow.is_complete

    def test_mixed_workload_all_complete(self):
        deployment = RackDeployment(
            8, 4, rack_config=RackConfig(servers_per_rack=4),
            uplink_multiplier=1.0, seed=2,
        )
        flows = self._flows(deployment)
        result = deployment.run(flows)
        assert len(result.completed_flows) == len(flows)
        assert 0 <= result.intra_rack_fraction < 0.5

    def test_expected_intra_fraction(self):
        deployment = RackDeployment(
            8, 4, rack_config=RackConfig(servers_per_rack=24),
        )
        expected = deployment.expected_intra_fraction()
        assert expected == pytest.approx(23 / 191)
