"""End-to-end epoch-synchronous simulation (paper §7)."""

import pytest

from repro.core import CongestionConfig, Flow, SiriusNetwork, SlotTiming
from repro.units import KILOBYTE, NANOSECOND


def single_flow(size_bits=4100, src=0, dst=1, arrival=0.0, flow_id=0):
    return Flow(flow_id, src, dst, size_bits=size_bits, arrival_time=arrival)


class TestBasics:
    def test_single_cell_flow_completes(self):
        net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=1)
        result = net.run([single_flow()], check_invariants=True)
        assert len(result.completed_flows) == 1
        assert result.delivered_bits == pytest.approx(4100)

    def test_fct_floor_is_protocol_round_trip(self):
        # request (e0) -> grant decision (e1) -> applied+sent (e2) ->
        # at intermediate (e3) -> forwarded -> delivered (e4): the FCT
        # floor is a handful of epochs.
        net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=1)
        result = net.run([single_flow()])
        epoch = net.schedule.epoch_duration_s
        fct = result.completed_flows[0].fct
        assert 2 * epoch <= fct <= 6 * epoch

    def test_ideal_mode_is_faster_at_idle(self):
        flows = [single_flow()]
        protocol = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=1).run(
            [single_flow()]
        )
        ideal = SiriusNetwork(
            8, 4, uplink_multiplier=1.0, seed=1,
            config=CongestionConfig(ideal=True),
        ).run(flows)
        assert ideal.completed_flows[0].fct < protocol.completed_flows[0].fct

    def test_conservation_all_bits_delivered(self):
        net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=2)
        flows = [
            single_flow(size_bits=50_000, src=i % 8, dst=(i + 3) % 8,
                        arrival=i * 1e-7, flow_id=i)
            for i in range(20)
        ]
        result = net.run(flows, check_invariants=True)
        assert len(result.completed_flows) == 20
        assert result.delivered_bits == pytest.approx(result.offered_bits)

    def test_unsorted_flows_rejected(self):
        net = SiriusNetwork(8, 4)
        flows = [single_flow(arrival=1.0, flow_id=0),
                 single_flow(arrival=0.0, flow_id=1)]
        with pytest.raises(ValueError):
            net.run(flows)

    def test_empty_workload(self):
        net = SiriusNetwork(8, 4)
        result = net.run([])
        assert result.delivered_bits == 0.0
        assert result.normalized_goodput == 0.0


class TestDeterminism:
    def test_same_seed_same_result(self):
        def run(seed):
            net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=seed)
            flows = [
                single_flow(size_bits=30_000, src=i % 8, dst=(i + 1) % 8,
                            arrival=i * 1e-7, flow_id=i)
                for i in range(10)
            ]
            result = net.run(flows)
            return [f.completion_time for f in result.flows]

        # Identical seeds reproduce exactly; differing seeds may or may
        # not coincide at epoch granularity, so only equality is asserted.
        assert run(7) == run(7)


class TestQueueBound:
    def test_forward_queues_bounded_by_q_under_incast(self):
        # Everyone sends to node 0 simultaneously: the grant protocol
        # must keep every per-destination forward queue at <= Q cells.
        for q in (2, 4, 8):
            net = SiriusNetwork(
                8, 4, uplink_multiplier=1.0, seed=3,
                config=CongestionConfig(queue_threshold=q),
            )
            flows = [
                single_flow(size_bits=100_000, src=src, dst=0,
                            arrival=0.0, flow_id=src)
                for src in range(1, 8)
            ]
            result = net.run(flows, check_invariants=True)
            assert len(result.completed_flows) == 7
            # Aggregate peak is bounded by Q per destination x N dests.
            assert result.peak_fwd_cells <= q * 8

    def test_ideal_mode_queues_can_exceed_q(self):
        net_ideal = SiriusNetwork(
            8, 4, uplink_multiplier=1.0, seed=3,
            config=CongestionConfig(ideal=True),
        )
        flows = [
            single_flow(size_bits=400_000, src=src, dst=0, arrival=0.0,
                        flow_id=src)
            for src in range(1, 8)
        ]
        result = net_ideal.run(flows)
        assert result.peak_fwd_cells > 4


class TestCapacityMultiplier:
    def test_alternating_capacity_for_1_5x(self):
        net = SiriusNetwork(8, 4, uplink_multiplier=1.5)
        caps = [net.epoch_capacity(e) for e in range(6)]
        assert sorted(set(caps)) == [1, 2]
        assert sum(caps) == pytest.approx(1.5 * 6)

    def test_integer_multipliers_constant(self):
        net = SiriusNetwork(8, 4, uplink_multiplier=2.0)
        assert {net.epoch_capacity(e) for e in range(5)} == {2}

    def test_higher_multiplier_not_slower(self):
        def goodput(mult):
            net = SiriusNetwork(8, 4, uplink_multiplier=mult, seed=4)
            flows = [
                single_flow(size_bits=200_000, src=i % 8, dst=(i + 5) % 8,
                            arrival=0.0, flow_id=i)
                for i in range(16)
            ]
            result = net.run(flows)
            return result.duration_s

        assert goodput(2.0) <= goodput(1.0)

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            SiriusNetwork(8, 4, uplink_multiplier=0.5)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            SiriusNetwork(8, 4).epoch_capacity(-1)


class TestGuardbandScaling:
    def test_longer_guardband_stretches_completion(self):
        def fct(guard_ns):
            timing = SlotTiming(guardband_s=guard_ns * NANOSECOND)
            net = SiriusNetwork(8, 4, uplink_multiplier=1.0,
                                timing=timing, seed=5)
            result = net.run([single_flow(size_bits=40_000)])
            return result.completed_flows[0].fct

        assert fct(40) > fct(10) > fct(1)

    def test_cell_size_scales_with_slot(self):
        small = SiriusNetwork(8, 4, timing=SlotTiming(guardband_s=5e-9))
        large = SiriusNetwork(8, 4, timing=SlotTiming(guardband_s=20e-9))
        assert large.timing.payload_bits > small.timing.payload_bits


class TestReorderTracking:
    def test_reorder_buffer_observed_for_multicell_flows(self):
        net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=6,
                            track_reorder=True)
        flows = [single_flow(size_bits=500_000)]
        result = net.run(flows)
        assert len(result.completed_flows) == 1
        # Cells spread over random intermediates: some reordering is
        # overwhelmingly likely for a 100+-cell flow.
        assert result.peak_reorder_cells >= 1

    def test_reorder_disabled_reports_zero(self):
        net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=6)
        result = net.run([single_flow(size_bits=500_000)])
        assert result.peak_reorder_cells == 0


class TestResultMetrics:
    def test_fct_percentile_filters_short_flows(self):
        net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=7)
        flows = [
            single_flow(size_bits=8_000, flow_id=0),                  # short
            single_flow(size_bits=2_000_000, src=2, dst=3, flow_id=1),  # long
        ]
        result = net.run(sorted(flows, key=lambda f: f.arrival_time))
        short_p99 = result.fct_percentile(99, max_size_bits=100 * KILOBYTE)
        long_fcts = result.fcts(min_size_bits=100 * KILOBYTE)
        assert short_p99 is not None
        assert long_fcts and long_fcts[0] > short_p99

    def test_percentile_validation(self):
        net = SiriusNetwork(8, 4, uplink_multiplier=1.0)
        result = net.run([single_flow()])
        with pytest.raises(ValueError):
            result.fct_percentile(0)
        assert result.fct_percentile(100) is not None

    def test_goodput_normalization_uses_reference_bandwidth(self):
        net = SiriusNetwork(8, 4, uplink_multiplier=2.0)
        # Reference bandwidth is the multiplier-1 uplink count.
        assert net.reference_node_bandwidth_bps == pytest.approx(
            2 * net.topology.link_rate_bps
        )

    def test_completion_fraction(self):
        net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=8)
        result = net.run([single_flow()], max_epochs=1)
        assert result.completion_fraction < 1.0
