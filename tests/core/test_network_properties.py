"""Property-based tests of the full Sirius simulator.

Invariants checked on randomly generated workloads:

* lossless delivery — every offered bit is delivered, every flow
  completes (the core is bufferless but the protocol is lossless, §4.3);
* queue bounds hold throughout (via ``check_invariants``);
* FCTs are causal (completion after arrival).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import CongestionConfig, Flow, SiriusNetwork


@st.composite
def workloads(draw):
    n_nodes = draw(st.sampled_from([4, 8, 12]))
    n_flows = draw(st.integers(1, 12))
    flows = []
    time = 0.0
    for flow_id in range(n_flows):
        time += draw(st.floats(0.0, 5e-6))
        src = draw(st.integers(0, n_nodes - 1))
        dst_offset = draw(st.integers(1, n_nodes - 1))
        size = draw(st.integers(8, 60_000))
        flows.append(Flow(flow_id, src, (src + dst_offset) % n_nodes,
                          size_bits=size, arrival_time=time))
    return n_nodes, flows


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=workloads(), q=st.sampled_from([2, 4]),
       seed=st.integers(0, 10))
def test_lossless_complete_delivery(data, q, seed):
    n_nodes, flows = data
    net = SiriusNetwork(
        n_nodes, n_nodes // 2 if n_nodes % (n_nodes // 2) == 0 else n_nodes,
        uplink_multiplier=1.0, seed=seed, track_reorder=True,
        config=CongestionConfig(queue_threshold=q),
    )
    result = net.run(flows, check_invariants=True)
    assert len(result.completed_flows) == len(flows)
    assert result.delivered_bits == pytest.approx(result.offered_bits)
    for flow in result.flows:
        assert flow.completion_time > flow.arrival_time


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=workloads(), seed=st.integers(0, 5))
def test_ideal_mode_also_lossless(data, seed):
    n_nodes, flows = data
    net = SiriusNetwork(
        n_nodes, n_nodes // 2 if n_nodes % (n_nodes // 2) == 0 else n_nodes,
        uplink_multiplier=1.0, seed=seed, track_reorder=True,
        config=CongestionConfig(ideal=True),
    )
    result = net.run(flows)
    assert len(result.completed_flows) == len(flows)
    assert result.delivered_bits == pytest.approx(result.offered_bits)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=workloads())
def test_multiplier_two_lossless(data):
    n_nodes, flows = data
    net = SiriusNetwork(
        n_nodes, n_nodes // 2 if n_nodes % (n_nodes // 2) == 0 else n_nodes,
        uplink_multiplier=2.0, seed=1,
    )
    result = net.run(flows, check_invariants=True)
    assert len(result.completed_flows) == len(flows)
