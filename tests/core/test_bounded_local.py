"""Bounded LOCAL buffers with server-side backpressure (§4.3)."""

import pytest

from repro import FailurePlan, FlowWorkload, SiriusNetwork, WorkloadConfig
from repro.units import KILOBYTE, MEGABYTE


def make_net(capacity, seed=1, n=16):
    return SiriusNetwork(n, 4, uplink_multiplier=1.0, seed=seed,
                         local_capacity_cells=capacity)


def make_flows(net, load=0.8, n_flows=300, seed=3):
    return FlowWorkload(WorkloadConfig(
        n_nodes=net.topology.n_nodes, load=load,
        node_bandwidth_bps=net.reference_node_bandwidth_bps,
        mean_flow_bits=200 * KILOBYTE, truncation_bits=2 * MEGABYTE,
        seed=seed,
    )).generate(n_flows)


class TestBound:
    def test_local_never_exceeds_capacity(self):
        net = make_net(64)
        result = net.run(make_flows(net), check_invariants=True)
        assert result.peak_local_cells <= 64
        assert result.completion_fraction == 1.0

    def test_unbounded_local_exceeds_small_bound(self):
        net = make_net(None)
        result = net.run(make_flows(net))
        assert result.peak_local_cells > 64

    def test_backpressure_preserves_all_traffic(self):
        bounded = make_net(32)
        result = bounded.run(make_flows(bounded), check_invariants=True)
        assert result.delivered_bits == pytest.approx(result.offered_bits)

    def test_throughput_roughly_unaffected(self):
        # The bound shifts queuing host-side; the network still drains
        # at its own pace.
        bounded = make_net(64, seed=2)
        result_b = bounded.run(make_flows(bounded, seed=5))
        unbounded = make_net(None, seed=2)
        result_u = unbounded.run(make_flows(unbounded, seed=5))
        assert result_b.duration_s <= result_u.duration_s * 1.3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            make_net(0)

    def test_bound_with_failures(self):
        net = make_net(64, seed=4)
        flows = make_flows(net, load=0.4, n_flows=200, seed=7)
        plan = FailurePlan.single_failure(node=3, at_epoch=40)
        result = net.run(flows, failure_plan=plan, check_invariants=True)
        unaffected = [f for f in flows if f.src != 3 and f.dst != 3]
        assert all(f.is_complete for f in unaffected)
        # Retransmissions of cells stranded at the failed node re-enter
        # LOCAL from the retransmit buffer (not the paced server path),
        # so the bound may be exceeded transiently by at most their
        # count.
        assert (result.peak_local_cells
                <= 64 + result.retransmitted_cells)
