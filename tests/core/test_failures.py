"""Fault tolerance: detection, blast radius, schedule adjustment (§4.5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import FailureDetector, FailurePlan, SiriusNetwork
from repro.core.failures import (
    AdjustedSchedule,
    FailureEvent,
    blast_radius,
    surviving_bandwidth_fraction,
)
from repro.workload import FlowWorkload, WorkloadConfig
from repro.units import KILOBYTE, MEGABYTE


class TestFailurePlan:
    def test_events_apply_in_order(self):
        plan = FailurePlan([
            FailureEvent(10, 2),
            FailureEvent(20, 2, fails=False),
            FailureEvent(15, 3),
        ])
        plan.advance_to(9)
        assert not plan.failed
        plan.advance_to(16)
        assert plan.failed == {2, 3}
        plan.advance_to(25)
        assert plan.failed == {3}

    def test_single_failure_helper(self):
        plan = FailurePlan.single_failure(4, at_epoch=5, recover_at=9)
        plan.advance_to(5)
        assert plan.is_failed(4)
        plan.advance_to(9)
        assert not plan.is_failed(4)

    def test_recovery_must_follow_failure(self):
        with pytest.raises(ValueError):
            FailurePlan.single_failure(1, at_epoch=5, recover_at=5)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(-1, 0)
        with pytest.raises(ValueError):
            FailureEvent(0, -1)


class TestDetector:
    def test_detects_after_threshold_misses(self):
        detector = FailureDetector(4, node=0, threshold=3)
        heard = {1, 2}  # node 3 silent
        assert detector.observe_epoch(heard) == []
        assert detector.observe_epoch(heard) == []
        assert detector.observe_epoch(heard) == [3]
        assert detector.suspected == {3}

    def test_single_visit_clears_suspicion(self):
        detector = FailureDetector(4, node=0, threshold=2)
        detector.observe_epoch(set())
        detector.observe_epoch(set())
        assert detector.suspected == {1, 2, 3}
        detector.observe_epoch({2})
        assert detector.suspected == {1, 3}

    def test_grey_failure_needs_consecutive_misses(self):
        detector = FailureDetector(4, node=0, threshold=3)
        # Sporadic: miss, hear, miss, hear ... never suspected.
        for _ in range(5):
            detector.observe_epoch(set())
            detector.observe_epoch({1, 2, 3})
        assert not detector.suspected

    def test_detection_latency_microseconds(self):
        # §4.5: interconnection every few microseconds -> fast detection.
        detector = FailureDetector(128, node=0, threshold=3)
        latency = detector.detection_latency_s(1.6e-6)
        assert latency < 10e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureDetector(1, node=0)
        with pytest.raises(ValueError):
            FailureDetector(4, node=9)
        with pytest.raises(ValueError):
            FailureDetector(4, node=0, threshold=0)
        with pytest.raises(ValueError):
            FailureDetector(4, node=0).detection_latency_s(0.0)


class TestBandwidthImpact:
    def test_one_failure_costs_one_over_n_minus_one(self):
        # §4.5: effective uplink bandwidth reduced proportionally.
        fraction = surviving_bandwidth_fraction(32, 1)
        assert fraction == pytest.approx(30 / 31)

    def test_adjustment_recovers_everything(self):
        assert surviving_bandwidth_fraction(32, 5,
                                            schedule_adjusted=True) == 1.0

    def test_blast_radius_is_whole_network(self):
        affected, description = blast_radius(128)
        assert affected == 128
        assert "1/N" in description

    def test_validation(self):
        with pytest.raises(ValueError):
            surviving_bandwidth_fraction(1, 0)
        with pytest.raises(ValueError):
            surviving_bandwidth_fraction(4, 4)
        with pytest.raises(ValueError):
            blast_radius(4, "mesh")


class TestAdjustedSchedule:
    def test_survivors_meet_round_robin(self):
        adjusted = AdjustedSchedule(8, failed={2, 5})
        adjusted.verify_round_robin()
        assert adjusted.epoch_slots == 6

    def test_failed_nodes_never_scheduled(self):
        adjusted = AdjustedSchedule(8, failed={3})
        for node in adjusted.survivors:
            for slot in range(adjusted.epoch_slots):
                assert adjusted.peer_at(node, slot) != 3

    def test_failed_node_cannot_query(self):
        adjusted = AdjustedSchedule(8, failed={3})
        with pytest.raises(ValueError):
            adjusted.peer_at(3, 0)

    def test_needs_two_survivors(self):
        with pytest.raises(ValueError):
            AdjustedSchedule(3, failed={0, 1})

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(3, 16), data=st.data())
    def test_round_robin_property(self, n, data):
        n_failed = data.draw(st.integers(0, n - 2))
        failed = set(data.draw(st.permutations(list(range(n))))[:n_failed])
        adjusted = AdjustedSchedule(n, failed=failed)
        adjusted.verify_round_robin()


class TestSimulationWithFailures:
    def _workload(self, n, seed=3):
        net = SiriusNetwork(n, 4, uplink_multiplier=1.0)
        return FlowWorkload(WorkloadConfig(
            n_nodes=n, load=0.4,
            node_bandwidth_bps=net.reference_node_bandwidth_bps,
            mean_flow_bits=50 * KILOBYTE, truncation_bits=1 * MEGABYTE,
            seed=seed,
        ))

    def test_unaffected_flows_complete(self):
        n = 16
        net = SiriusNetwork(n, 4, uplink_multiplier=1.0, seed=1)
        flows = self._workload(n).generate(400)
        plan = FailurePlan.single_failure(node=5, at_epoch=50)
        result = net.run(flows, failure_plan=plan, check_invariants=True)
        for flow in flows:
            if flow.src != 5 and flow.dst != 5:
                assert flow.is_complete, flow.flow_id

    def test_flows_to_failed_node_terminated(self):
        n = 16
        net = SiriusNetwork(n, 4, uplink_multiplier=1.0, seed=1)
        flows = self._workload(n).generate(400)
        plan = FailurePlan.single_failure(node=5, at_epoch=50)
        result = net.run(flows, failure_plan=plan)
        assert result.failed_flows > 0
        late_to_5 = [f for f in flows
                     if f.dst == 5 and f.arrival_time > 100e-6]
        for flow in late_to_5:
            assert not flow.is_complete

    def test_transit_cells_retransmitted(self):
        n = 16
        net = SiriusNetwork(n, 4, uplink_multiplier=1.0, seed=1)
        flows = self._workload(n).generate(400)
        plan = FailurePlan.single_failure(node=5, at_epoch=50)
        result = net.run(flows, failure_plan=plan)
        assert result.retransmitted_cells > 0

    def test_recovery_restores_connectivity(self):
        n = 16
        flows = self._workload(n).generate(400)
        net = SiriusNetwork(n, 4, uplink_multiplier=1.0, seed=1)
        without_recovery = net.run(
            [f for f in flows],
            failure_plan=FailurePlan.single_failure(5, at_epoch=50),
        )
        flows2 = self._workload(n).generate(400)
        net2 = SiriusNetwork(n, 4, uplink_multiplier=1.0, seed=1)
        with_recovery = net2.run(
            flows2,
            failure_plan=FailurePlan.single_failure(5, at_epoch=50,
                                                    recover_at=120),
        )
        assert with_recovery.failed_flows < without_recovery.failed_flows

    def test_no_failures_is_baseline_behaviour(self):
        n = 8
        flows = self._workload(n).generate(100)
        net = SiriusNetwork(n, 4, uplink_multiplier=1.0, seed=2)
        result = net.run(flows, failure_plan=FailurePlan())
        assert result.failed_flows == 0
        assert result.completion_fraction == 1.0
