"""Per-node protocol state machine (paper §4.3)."""

import random

import pytest

from repro.core import Cell, CongestionConfig, SiriusNode


def make_node(node=0, n_nodes=8, q=4, ideal=False, seed=1):
    return SiriusNode(
        node, n_nodes, CongestionConfig(queue_threshold=q, ideal=ideal),
        random.Random(seed),
    )


def cell(flow=1, seq=0, src=0, dst=1):
    return Cell(flow, seq, src, dst)


class TestLocalBuffer:
    def test_enqueue_partitions_by_destination(self):
        node = make_node()
        node.enqueue_local(cell(dst=1))
        node.enqueue_local(cell(seq=1, dst=1))
        node.enqueue_local(cell(flow=2, dst=3))
        assert node.local_cells == 3
        assert len(node.local_by_dst[1]) == 2
        assert len(node.local_by_dst[3]) == 1

    def test_ideal_mode_bypasses_local(self):
        node = make_node(ideal=True)
        node.enqueue_local(cell(dst=1))
        assert node.local_cells == 0
        assert node.vq_cells == 1

    def test_peak_local_tracked(self):
        node = make_node()
        for seq in range(5):
            node.enqueue_local(cell(seq=seq))
        assert node.peak_local_cells == 5


class TestRequestGeneration:
    def test_one_request_per_cell(self):
        node = make_node()
        node.enqueue_local(cell(seq=0, dst=1))
        node.enqueue_local(cell(seq=1, dst=2))
        requests = node.generate_requests()
        assert len(requests) == 2
        assert sorted(dst for _i, dst in requests) == [1, 2]

    def test_at_most_one_request_per_intermediate(self):
        node = make_node(n_nodes=4)
        for seq in range(10):
            node.enqueue_local(cell(seq=seq, dst=1))
        requests = node.generate_requests()
        intermediates = [i for i, _d in requests]
        assert len(intermediates) == len(set(intermediates)) == 3  # n-1

    def test_requested_cells_not_rerequested(self):
        node = make_node()
        node.enqueue_local(cell(dst=1))
        assert len(node.generate_requests()) == 1
        # The same cell is pending; no new request next epoch.
        assert node.generate_requests() == []

    def test_ideal_mode_never_requests(self):
        node = make_node(ideal=True)
        node.enqueue_local(cell(dst=1))
        assert node.generate_requests() == []

    def test_requests_never_target_self(self):
        node = make_node(node=3)
        for seq in range(20):
            node.enqueue_local(cell(seq=seq, dst=1))
        requests = node.generate_requests()
        assert all(i != 3 for i, _d in requests)


class TestGrantDecision:
    def test_grants_one_request_per_destination(self):
        node = make_node(node=5)
        node.request_inbox = [(0, 2), (1, 2), (3, 2)]
        grants = node.decide_grants(grants_per_destination=1)
        assert len(grants) == 1
        assert grants[0][1] == 2
        assert node.outstanding[2] == 1

    def test_respects_queue_threshold(self):
        node = make_node(node=5, q=2)
        node.outstanding[2] = 2  # already at threshold
        node.request_inbox = [(0, 2)]
        assert node.decide_grants(1) == []

    def test_requests_to_self_destination_always_granted(self):
        node = make_node(node=5)
        node.request_inbox = [(0, 5), (1, 5), (2, 5)]
        grants = node.decide_grants(1)
        assert len(grants) == 3  # delivery consumes no queue space
        assert 5 not in node.outstanding

    def test_inbox_cleared_after_decision(self):
        node = make_node(node=5)
        node.request_inbox = [(0, 2)]
        node.decide_grants(1)
        assert node.request_inbox == []

    def test_capacity_scales_grants(self):
        node = make_node(node=5, q=4)
        node.request_inbox = [(0, 2), (1, 2), (3, 2)]
        grants = node.decide_grants(grants_per_destination=2)
        assert len(grants) == 2


class TestGrantApplication:
    def test_grant_moves_cell_to_virtual_queue(self):
        node = make_node()
        node.enqueue_local(cell(dst=1))
        node.generate_requests()
        node.grant_inbox = [(4, 1)]  # intermediate 4 granted dest 1
        node.apply_grants_and_expiries()
        assert node.local_cells == 0
        assert len(node.vq[4]) == 1
        assert node.requested.get(1, 0) == 0

    def test_denied_request_expires_and_cell_re_eligible(self):
        # Phases follow the network loop's order: apply, then generate.
        node = make_node()
        node.apply_grants_and_expiries()               # epoch 0
        node.enqueue_local(cell(dst=1))
        assert len(node.generate_requests()) == 1
        node.apply_grants_and_expiries()               # epoch 1
        assert node.generate_requests() == []          # still pending
        node.apply_grants_and_expiries()               # epoch 2: expires
        assert len(node.generate_requests()) == 1      # re-requested

    def test_grant_without_cell_is_an_error(self):
        node = make_node()
        node.grant_inbox = [(4, 1)]
        with pytest.raises(RuntimeError):
            node.apply_grants_and_expiries()


class TestTransmitReceive:
    def test_forward_queue_has_priority_over_virtual_queue(self):
        node = make_node(node=2)
        transit = cell(flow=9, src=7, dst=3)
        node.outstanding[3] = 1
        node.receive_transit(transit)
        node.vq.setdefault(3, __import__("collections").deque()).append(
            cell(flow=1, src=2, dst=3)
        )
        node.vq_cells += 1
        out = node.dequeue_for(3, capacity=1)
        assert out == [transit]

    def test_capacity_drains_both_queues(self):
        from collections import deque

        node = make_node(node=2)
        node.outstanding[3] = 1
        node.receive_transit(cell(flow=9, src=7, dst=3))
        node.vq[3] = deque([cell(flow=1, src=2, dst=3)])
        node.vq_cells = 1
        out = node.dequeue_for(3, capacity=2)
        assert len(out) == 2
        assert node.fwd_cells == 0 and node.vq_cells == 0

    def test_transit_arrival_consumes_outstanding_grant(self):
        node = make_node(node=2)
        node.outstanding[3] = 2
        node.receive_transit(cell(src=7, dst=3))
        assert node.outstanding[3] == 1
        node.receive_transit(cell(seq=1, src=6, dst=3))
        assert 3 not in node.outstanding

    def test_transit_without_grant_is_an_error(self):
        node = make_node(node=2)
        with pytest.raises(RuntimeError):
            node.receive_transit(cell(src=7, dst=3))

    def test_ideal_mode_accepts_ungranted_transit(self):
        node = make_node(node=2, ideal=True)
        node.receive_transit(cell(src=7, dst=3))
        assert node.fwd_cells == 1

    def test_busy_destinations(self):
        from collections import deque

        node = make_node(node=2)
        assert node.busy_destinations() == []
        node.vq[5] = deque([cell(dst=5)])
        assert node.busy_destinations() == [5]

    def test_zero_capacity_sends_nothing(self):
        node = make_node()
        assert node.dequeue_for(1, capacity=0) == []


class TestInvariants:
    def test_fresh_node_passes(self):
        make_node().check_invariants()

    def test_protocol_sequence_preserves_invariants(self):
        node = make_node()
        for seq in range(6):
            node.enqueue_local(cell(seq=seq, dst=1))
        node.generate_requests()
        node.check_invariants()
        node.grant_inbox = [(3, 1)]
        node.apply_grants_and_expiries()
        node.check_invariants()
