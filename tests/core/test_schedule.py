"""Static cyclic schedule and slot timing (paper §4.2, Fig 5b, §4.5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CyclicSchedule, SlotTiming
from repro.topology import SiriusTopology
from repro.units import GBPS, NANOSECOND


class TestSlotTiming:
    def test_paper_default_slot(self):
        # 10 ns guardband at 10% -> 100 ns slot, 90 ns transmission.
        timing = SlotTiming()
        assert timing.slot_duration_s == pytest.approx(100 * NANOSECOND)
        assert timing.transmission_time_s == pytest.approx(90 * NANOSECOND)

    def test_paper_cell_size_562_bytes(self):
        # §7: 90 ns at 50 Gb/s is a 562-byte cell.
        assert SlotTiming().cell_bytes == pytest.approx(562.5)

    def test_guardband_sweep_scales_slot(self):
        # Fig 11: guardband fixed at 10% of the slot.
        for guard_ns in (1, 5, 10, 20, 40):
            timing = SlotTiming(guardband_s=guard_ns * NANOSECOND)
            assert timing.slot_duration_s == pytest.approx(
                10 * guard_ns * NANOSECOND
            )
            assert timing.guardband_s / timing.slot_duration_s == (
                pytest.approx(0.1)
            )

    def test_payload_below_cell_size(self):
        timing = SlotTiming(header_bytes=50)
        assert timing.payload_bits == timing.cell_bits - 400

    def test_efficiency_below_guard_complement(self):
        timing = SlotTiming()
        assert 0.8 < timing.efficiency < 0.9

    def test_header_cannot_eat_cell(self):
        with pytest.raises(ValueError):
            SlotTiming(guardband_s=0.5 * NANOSECOND, header_bytes=50)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotTiming(guardband_s=0.0)
        with pytest.raises(ValueError):
            SlotTiming(guard_fraction=1.5)
        with pytest.raises(ValueError):
            SlotTiming(link_rate_bps=0)


class TestFig5bSchedule:
    """The 4-node example schedule."""

    def setup_method(self):
        self.schedule = CyclicSchedule(SiriusTopology(4, 2))

    def test_epoch_is_two_slots(self):
        assert self.schedule.slots_per_epoch == 2

    def test_all_uplinks_share_wavelength_per_slot(self):
        assert self.schedule.wavelength(0) == 0
        assert self.schedule.wavelength(1) == 1
        assert self.schedule.wavelength(2) == 0  # cyclic

    def test_contention_free(self):
        self.schedule.verify_contention_free()

    def test_full_coverage(self):
        self.schedule.verify_full_coverage()

    def test_each_pair_connected_once_per_epoch(self):
        seen = {}
        for slot in range(self.schedule.slots_per_epoch):
            for src, dst, _uplink in self.schedule.connections(slot):
                seen[(src, dst)] = seen.get((src, dst), 0) + 1
        for src in range(4):
            for dst in range(4):
                assert seen[(src, dst)] == 1

    def test_table_has_row_per_uplink(self):
        table = self.schedule.table()
        assert len(table) == 8  # 4 nodes x 2 uplinks
        for row in table:
            assert "slot0" in row and "slot1" in row


class TestTiming:
    def test_paper_epoch_example(self):
        # §4.2: 100 ns slots, 16 nodes per grating -> 1.6 us epoch.
        topo = SiriusTopology(128, 16)
        schedule = CyclicSchedule(topo)
        assert schedule.epoch_duration_s == pytest.approx(1.6e-6)

    def test_epoch_of(self):
        schedule = CyclicSchedule(SiriusTopology(128, 16))
        assert schedule.epoch_of(0.0) == 0
        assert schedule.epoch_of(1.7e-6) == 1
        with pytest.raises(ValueError):
            schedule.epoch_of(-1.0)

    def test_timing_inherits_topology_link_rate(self):
        topo = SiriusTopology(4, 2, link_rate_bps=100 * GBPS)
        schedule = CyclicSchedule(topo)
        assert schedule.timing.link_rate_bps == 100 * GBPS


class TestSlotLookup:
    def test_slot_for_inverts_destination(self):
        topo = SiriusTopology(16, 4)
        schedule = CyclicSchedule(topo)
        for uplink in topo.iter_uplinks():
            for dst in topo.reachable_nodes(uplink):
                slot = schedule.slot_for(uplink, dst)
                assert schedule.destination(uplink, slot) == dst

    def test_pair_slots_count_equals_multiplier(self):
        topo = SiriusTopology(16, 4, uplink_multiplier=2)
        schedule = CyclicSchedule(topo)
        assert len(schedule.pair_slots(0, 9)) == 2

    def test_negative_slot_rejected(self):
        topo = SiriusTopology(4, 2)
        schedule = CyclicSchedule(topo)
        with pytest.raises(ValueError):
            schedule.wavelength(-1)
        with pytest.raises(ValueError):
            schedule.destination(topo.uplinks(0)[0], -1)


@settings(max_examples=20, deadline=None)
@given(blocks=st.integers(1, 4), ports=st.integers(2, 8),
       mult=st.integers(1, 2))
def test_schedule_invariants_property(blocks, ports, mult):
    """Every valid schedule is contention-free with exact coverage."""
    topo = SiriusTopology(blocks * ports, ports, uplink_multiplier=mult)
    schedule = CyclicSchedule(topo)
    schedule.verify_contention_free()
    schedule.verify_full_coverage()
