"""Node-level failure operations: purge, grant release, drain (§4.5)."""

import random
from collections import deque

import pytest

from repro.core import Cell, CongestionConfig, SiriusNode
from repro.core.node import FairQueue


def make_node(node=0, n_nodes=8, ideal=False, seed=1):
    return SiriusNode(node, n_nodes,
                      CongestionConfig(ideal=ideal), random.Random(seed))


class TestReleaseGrants:
    def test_releases_only_the_failed_sources_reservations(self):
        node = make_node(node=7)
        node.request_inbox = [(1, 3), (2, 3), (1, 4)]
        node.decide_grants(grants_per_destination=4)
        before = sum(node.outstanding.values())
        released = node.release_grants_for(1)
        assert released >= 1
        assert sum(node.outstanding.values()) == before - released
        # Source 2's reservation survives.
        assert node.outstanding.get(3, 0) >= 1

    def test_noop_for_unknown_source(self):
        node = make_node()
        assert node.release_grants_for(5) == 0

    def test_direct_window_cleared(self):
        node = make_node(node=7)
        node.request_inbox = [(1, 7)]
        node.decide_grants(1)
        assert node._direct_outstanding.get(1) == 1
        node.release_grants_for(1)
        assert 1 not in node._direct_outstanding


class TestPurgeDestination:
    def test_local_cells_to_dead_destination_dropped(self):
        node = make_node()
        for seq in range(3):
            node.enqueue_local(Cell(1, seq, 0, 5))
        node.enqueue_local(Cell(2, 0, 0, 3))
        dropped = node.purge_destination(5)
        assert dropped == 3
        assert node.local_cells == 1
        assert 5 not in node.local_by_dst

    def test_forward_queue_dropped(self):
        node = make_node(node=2)
        node.outstanding[5] = 1
        node.receive_transit(Cell(9, 0, 7, 5))
        dropped = node.purge_destination(5)
        assert dropped == 1
        assert node.fwd_cells == 0
        assert 5 not in node.outstanding

    def test_virtual_queue_cells_for_dead_destination_dropped(self):
        node = make_node()
        node.vq[3] = deque([Cell(1, 0, 0, 5), Cell(2, 0, 0, 6)])
        node.vq_cells = 2
        dropped = node.purge_destination(5)
        assert dropped == 1
        assert node.vq_cells == 1
        assert [c.dst for c in node.vq[3]] == [6]

    def test_fairqueue_purge_in_ideal_mode(self):
        node = make_node(ideal=True)
        node.enqueue_local(Cell(1, 0, 0, 5))
        node.enqueue_local(Cell(2, 0, 0, 6))
        dropped = node.purge_destination(5)
        assert dropped == 1
        assert node.vq_cells == 1

    def test_requests_for_dead_destination_forgotten(self):
        node = make_node()
        node.apply_grants_and_expiries()
        node.enqueue_local(Cell(1, 0, 0, 5))
        node.generate_requests()
        node.purge_destination(5)
        node.excluded.add(5)
        # Expiry of the stale request batch must not underflow.
        node.apply_grants_and_expiries()
        node.apply_grants_and_expiries()
        node.check_invariants()


class TestDrainForFailure:
    def test_separates_transit_from_own_cells(self):
        node = make_node(node=2)
        node.outstanding[5] = 1
        node.receive_transit(Cell(9, 0, 7, 5))       # transit
        node.enqueue_local(Cell(1, 0, 2, 4))          # own
        node.vq[4] = deque([Cell(1, 1, 2, 4)])        # own, granted
        node.vq_cells = 1
        transit, own = node.drain_for_failure()
        assert [c.flow_id for c in transit] == [9]
        assert sorted(c.seq for c in own) == [0, 1]
        assert node.fwd_cells == node.vq_cells == node.local_cells == 0
        node.check_invariants()

    def test_state_reset_supports_clean_rejoin(self):
        node = make_node()
        node.apply_grants_and_expiries()
        node.enqueue_local(Cell(1, 0, 0, 5))
        node.generate_requests()
        node.drain_for_failure()
        # A fresh protocol cycle works without residue.
        node.apply_grants_and_expiries()
        node.enqueue_local(Cell(2, 0, 0, 3))
        assert len(node.generate_requests()) == 1
        node.check_invariants()


class TestFairQueuePurge:
    def test_purge_by_predicate(self):
        queue = FairQueue()
        for seq in range(3):
            queue.append(Cell(1, seq, 0, 5))
        queue.append(Cell(2, 0, 0, 6))
        removed = queue.purge(lambda c: c.dst == 5)
        assert len(removed) == 3
        assert len(queue) == 1
        assert queue.popleft().dst == 6

    def test_purge_nothing(self):
        queue = FairQueue()
        queue.append(Cell(1, 0, 0, 5))
        assert queue.purge(lambda c: False) == []
        assert len(queue) == 1

    def test_queue_usable_after_purge(self):
        queue = FairQueue()
        for flow in (1, 2, 3):
            for seq in range(2):
                queue.append(Cell(flow, seq, 0, flow))
        queue.purge(lambda c: c.flow_id == 2)
        drained = []
        while queue:
            drained.append(queue.popleft())
        assert len(drained) == 4
        assert all(c.flow_id in (1, 3) for c in drained)
