"""On-demand scheduling baseline (§4.2's rejected alternative)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demand_scheduler import (
    ControlPlaneModel,
    cyclic_slots_for_demand,
    decompose_demand,
    greedy_matching,
    verify_matchings_contention_free,
    vlb_slots_for_demand,
)


def uniform_demand(n, value=1.0):
    return [[0.0 if i == j else value for j in range(n)] for i in range(n)]


class TestGreedyMatching:
    def test_prefers_largest_demands(self):
        demand = [[0, 5, 1], [1, 0, 9], [2, 1, 0]]
        matching = greedy_matching(demand)
        assert matching[1] == 2  # the 9
        assert matching[0] == 1  # the 5

    def test_is_a_partial_permutation(self):
        demand = uniform_demand(6)
        matching = greedy_matching(demand)
        assert len(set(matching.values())) == len(matching)

    def test_empty_demand(self):
        assert greedy_matching(uniform_demand(4, 0.0)) == {}


class TestDecomposition:
    def test_uniform_demand_within_greedy_bound(self):
        # Optimal is N-1 permutation slots; greedy maximal matching is
        # within the classic 2x bound.
        slots = decompose_demand(uniform_demand(5))
        verify_matchings_contention_free(slots)
        assert 4 <= len(slots) <= 8

    def test_all_demand_served(self):
        demand = [[0, 3, 0, 1], [2, 0, 1, 0], [0, 0, 0, 4], [1, 1, 1, 0]]
        slots = decompose_demand(demand)
        verify_matchings_contention_free(slots)
        served = [[0.0] * 4 for _ in range(4)]
        for matching in slots:
            for src, dst in matching.items():
                served[src][dst] += 1.0
        for i in range(4):
            for j in range(4):
                assert served[i][j] >= demand[i][j]

    def test_skewed_demand_beats_cyclic_on_slots(self):
        # A single hot pair: demand-aware serves it every slot; the
        # cyclic schedule gives it only 1/(N-1) of slots.
        n = 8
        demand = uniform_demand(n, 0.0)
        demand[0][1] = 20.0
        aware = len(decompose_demand(demand))
        cyclic = cyclic_slots_for_demand(demand)
        assert aware == 20
        assert cyclic == 20 * (n - 1)

    def test_vlb_uniformizes_the_skew(self):
        n = 8
        demand = uniform_demand(n, 0.0)
        demand[0][1] = 20.0
        vlb = vlb_slots_for_demand(demand)
        cyclic_direct = cyclic_slots_for_demand(demand)
        # Load balancing reclaims most of the cyclic schedule's loss.
        assert vlb < cyclic_direct / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            decompose_demand(uniform_demand(3), cell_quantum=0)
        with pytest.raises(ValueError):
            decompose_demand([[1.0, 0.0], [0.0, 0.0]])  # self-demand
        with pytest.raises(ValueError):
            decompose_demand([[0.0, 1.0]])  # not square
        with pytest.raises(ValueError):
            cyclic_slots_for_demand(uniform_demand(3), cell_quantum=0)
        with pytest.raises(ValueError):
            vlb_slots_for_demand(uniform_demand(3), cell_quantum=0)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 6), data=st.data())
    def test_decomposition_contention_free_property(self, n, data):
        demand = [
            [
                0.0 if i == j else data.draw(st.integers(0, 4))
                for j in range(n)
            ]
            for i in range(n)
        ]
        slots = decompose_demand(demand)
        verify_matchings_contention_free(slots)


class TestControlPlane:
    def test_round_latency_dwarfs_the_slot(self):
        # §4.2: on-demand scheduling is impractical at nanosecond
        # timescales — one round is thousands of 100 ns slots stale.
        model = ControlPlaneModel()
        staleness = model.staleness_slots(4096, slot_duration_s=100e-9)
        assert staleness > 100

    def test_latency_grows_with_scale(self):
        model = ControlPlaneModel()
        assert (model.round_latency_s(4096)
                > model.round_latency_s(64))

    def test_components_positive(self):
        model = ControlPlaneModel()
        assert model.collection_latency_s(128) > 0
        assert model.compute_latency_s(128) > 0
        assert model.distribution_latency_s(128) > 0

    def test_propagation_floor(self):
        # Even with infinite compute, two datacenter crossings bound
        # the round at ~5 us for a 500 m span.
        model = ControlPlaneModel(matching_time_per_node_ns=0.0)
        assert model.round_latency_s(2) > 4e-6

    def test_validation(self):
        model = ControlPlaneModel()
        with pytest.raises(ValueError):
            model.round_latency_s(1)
        with pytest.raises(ValueError):
            model.staleness_slots(64, slot_duration_s=0.0)
