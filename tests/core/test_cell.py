"""Cells and flows (paper §4.2)."""

import pytest

from repro.core import Cell, Flow


class TestCell:
    def test_cells_are_immutable(self):
        cell = Cell(flow_id=1, seq=0, src=2, dst=3)
        with pytest.raises(AttributeError):
            cell.dst = 4

    def test_equality(self):
        assert Cell(1, 0, 2, 3) == Cell(1, 0, 2, 3)
        assert Cell(1, 0, 2, 3) != Cell(1, 1, 2, 3)


class TestFlowSegmentation:
    def test_exact_multiple(self):
        flow = Flow(1, 0, 1, size_bits=8200, arrival_time=0.0)
        assert flow.segment(4100) == 2

    def test_remainder_needs_extra_cell(self):
        flow = Flow(1, 0, 1, size_bits=8201, arrival_time=0.0)
        assert flow.segment(4100) == 3

    def test_tiny_flow_is_one_cell(self):
        flow = Flow(1, 0, 1, size_bits=8, arrival_time=0.0)
        assert flow.segment(4100) == 1

    def test_invalid_payload(self):
        flow = Flow(1, 0, 1, size_bits=100, arrival_time=0.0)
        with pytest.raises(ValueError):
            flow.segment(0)


class TestFlowLifecycle:
    def test_completion_and_fct(self):
        flow = Flow(1, 0, 1, size_bits=8200, arrival_time=2.0)
        flow.segment(4100)
        assert not flow.record_delivery(3.0)
        assert flow.record_delivery(5.0)
        assert flow.is_complete
        assert flow.fct == pytest.approx(3.0)

    def test_fct_none_while_in_flight(self):
        flow = Flow(1, 0, 1, size_bits=100, arrival_time=0.0)
        flow.segment(50)
        assert flow.fct is None

    def test_delivery_before_segmentation_rejected(self):
        flow = Flow(1, 0, 1, size_bits=100, arrival_time=0.0)
        with pytest.raises(RuntimeError):
            flow.record_delivery(1.0)

    def test_over_delivery_rejected(self):
        flow = Flow(1, 0, 1, size_bits=100, arrival_time=0.0)
        flow.segment(200)
        flow.record_delivery(1.0)
        with pytest.raises(RuntimeError):
            flow.record_delivery(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Flow(1, 0, 0, size_bits=10, arrival_time=0.0)  # src == dst
        with pytest.raises(ValueError):
            Flow(1, 0, 1, size_bits=0, arrival_time=0.0)
        with pytest.raises(ValueError):
            Flow(1, 0, 1, size_bits=10, arrival_time=-1.0)
