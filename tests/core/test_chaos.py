"""Chaos property tests: random failure plans, full accounting.

The invariant under any failure/recovery schedule: **no silent loss** —
every offered flow either completes or is explicitly counted in
``failed_flows``, and the in-network queue bounds hold throughout.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FailurePlan, SiriusNetwork
from repro.core.cell import Flow
from repro.core.failures import FailureEvent


@st.composite
def chaos_scenarios(draw):
    n_nodes = draw(st.sampled_from([8, 12]))
    n_flows = draw(st.integers(5, 25))
    flows = []
    time = 0.0
    for fid in range(n_flows):
        time += draw(st.floats(0.0, 4e-6))
        src = draw(st.integers(0, n_nodes - 1))
        offset = draw(st.integers(1, n_nodes - 1))
        size = draw(st.integers(100, 40_000))
        flows.append(Flow(fid, src, (src + offset) % n_nodes,
                          size_bits=size, arrival_time=time))
    events = []
    n_failures = draw(st.integers(0, 2))
    used = set()
    for _ in range(n_failures):
        node = draw(st.integers(0, n_nodes - 1))
        if node in used:
            continue
        used.add(node)
        fail_at = draw(st.integers(1, 60))
        events.append(FailureEvent(fail_at, node, fails=True))
        if draw(st.booleans()):
            events.append(FailureEvent(
                fail_at + draw(st.integers(10, 60)), node, fails=False,
            ))
    return n_nodes, flows, events


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario=chaos_scenarios(), seed=st.integers(0, 5))
def test_no_silent_loss_under_chaos(scenario, seed):
    n_nodes, flows, events = scenario
    net = SiriusNetwork(n_nodes, n_nodes // 2, uplink_multiplier=1.0,
                        seed=seed)
    result = net.run(flows, failure_plan=FailurePlan(events),
                     check_invariants=True, drain_epochs=20_000)
    completed = len(result.completed_flows)
    # Full accounting: completed + explicitly failed = offered.
    assert completed + result.failed_flows == len(flows), (
        completed, result.failed_flows, len(flows), events,
    )
    # Causality for everything that completed.
    for flow in result.completed_flows:
        assert flow.completion_time > flow.arrival_time


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario=chaos_scenarios())
def test_bounded_local_under_chaos(scenario):
    n_nodes, flows, events = scenario
    net = SiriusNetwork(n_nodes, n_nodes // 2, uplink_multiplier=1.0,
                        seed=1, local_capacity_cells=16)
    result = net.run(flows, failure_plan=FailurePlan(events),
                     check_invariants=True, drain_epochs=20_000)
    assert (result.peak_local_cells
            <= 16 + result.retransmitted_cells)
    assert (len(result.completed_flows) + result.failed_flows
            == len(flows))
