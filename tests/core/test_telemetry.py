"""Per-epoch telemetry collection."""

import pytest

from repro import FlowWorkload, SiriusNetwork, WorkloadConfig
from repro.core.telemetry import Telemetry, ascii_sparkline


def run_with_telemetry(sample_every=1, load=0.5, flows=150):
    net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=1)
    workload = FlowWorkload(WorkloadConfig(
        n_nodes=8, load=load,
        node_bandwidth_bps=net.reference_node_bandwidth_bps,
        mean_flow_bits=200_000, truncation_bits=2_000_000, seed=3,
    ))
    telemetry = Telemetry(sample_every=sample_every)
    result = net.run(workload.generate(flows), telemetry=telemetry)
    return net, result, telemetry


class TestCollection:
    def test_samples_every_epoch_by_default(self):
        _net, result, telemetry = run_with_telemetry()
        assert telemetry.n_samples == result.epochs

    def test_sampling_period_thins_series(self):
        _net, result, telemetry = run_with_telemetry(sample_every=4)
        assert telemetry.n_samples == pytest.approx(result.epochs / 4,
                                                    abs=1.0)

    def test_series_lengths_consistent(self):
        _net, _result, telemetry = run_with_telemetry()
        n = telemetry.n_samples
        assert len(telemetry.local_cells) == n
        assert len(telemetry.vq_cells) == n
        assert len(telemetry.fwd_cells) == n
        assert len(telemetry.in_flight_cells) == n
        assert len(telemetry.delivered_bits) == n

    def test_delivered_bits_monotone(self):
        _net, _result, telemetry = run_with_telemetry()
        series = telemetry.delivered_bits
        assert all(a <= b for a, b in zip(series, series[1:]))

    def test_backlog_drains_to_zeroish(self):
        _net, _result, telemetry = run_with_telemetry()
        backlog = telemetry.backlog_series()
        assert backlog[-1] <= 2  # final in-flight residue at most

    def test_validation(self):
        with pytest.raises(ValueError):
            Telemetry(sample_every=0)


class TestAnalysis:
    def test_summary_and_peaks(self):
        _net, result, telemetry = run_with_telemetry()
        summary = telemetry.summary()
        assert summary["samples"] == telemetry.n_samples
        # Telemetry's peak is a system-wide (summed) sample; it is
        # bounded by per-node peak x node count.
        assert summary["peak_fwd"] <= result.peak_fwd_cells * result.n_nodes
        assert summary["peak_backlog"] >= summary["peak_fwd"]
        assert telemetry.time_of_peak("local") is not None

    def test_unknown_series_rejected(self):
        _net, _result, telemetry = run_with_telemetry()
        with pytest.raises(ValueError):
            telemetry.peak("queue-of-dreams")

    def test_throughput_derivative(self):
        net, _result, telemetry = run_with_telemetry()
        cells = telemetry.throughput_cells(net.timing.payload_bits)
        assert len(cells) == telemetry.n_samples
        assert all(c >= 0 for c in cells)
        with pytest.raises(ValueError):
            telemetry.throughput_cells(0)


class TestSparkline:
    def test_length_capped_at_width(self):
        line = ascii_sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_short_series_kept_whole(self):
        assert len(ascii_sparkline([1, 2, 3])) == 3

    def test_flat_zero_series(self):
        assert ascii_sparkline([0, 0, 0]).strip() == ""

    def test_peak_maps_to_densest_glyph(self):
        line = ascii_sparkline([0.0, 1.0])
        assert line[-1] == "@"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_sparkline([])
        with pytest.raises(ValueError):
            ascii_sparkline([1.0], width=0)
