"""Per-epoch telemetry collection."""

import pytest

from repro import FlowWorkload, SiriusNetwork, WorkloadConfig
from repro.core.telemetry import Telemetry, ascii_sparkline


def run_with_telemetry(sample_every=1, load=0.5, flows=150):
    net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=1)
    workload = FlowWorkload(WorkloadConfig(
        n_nodes=8, load=load,
        node_bandwidth_bps=net.reference_node_bandwidth_bps,
        mean_flow_bits=200_000, truncation_bits=2_000_000, seed=3,
    ))
    telemetry = Telemetry(sample_every=sample_every)
    result = net.run(workload.generate(flows), telemetry=telemetry)
    return net, result, telemetry


class TestCollection:
    def test_samples_every_epoch_by_default(self):
        _net, result, telemetry = run_with_telemetry()
        assert telemetry.n_samples == result.epochs

    def test_sampling_period_thins_series(self):
        _net, result, telemetry = run_with_telemetry(sample_every=4)
        assert telemetry.n_samples == pytest.approx(result.epochs / 4,
                                                    abs=1.0)

    def test_series_lengths_consistent(self):
        _net, _result, telemetry = run_with_telemetry()
        n = telemetry.n_samples
        assert len(telemetry.local_cells) == n
        assert len(telemetry.vq_cells) == n
        assert len(telemetry.fwd_cells) == n
        assert len(telemetry.in_flight_cells) == n
        assert len(telemetry.delivered_bits) == n

    def test_delivered_bits_monotone(self):
        _net, _result, telemetry = run_with_telemetry()
        series = telemetry.delivered_bits
        assert all(a <= b for a, b in zip(series, series[1:]))

    def test_backlog_drains_to_zeroish(self):
        _net, _result, telemetry = run_with_telemetry()
        backlog = telemetry.backlog_series()
        assert backlog[-1] <= 2  # final in-flight residue at most

    def test_validation(self):
        with pytest.raises(ValueError):
            Telemetry(sample_every=0)


class TestAnalysis:
    def test_summary_and_peaks(self):
        _net, result, telemetry = run_with_telemetry()
        summary = telemetry.summary()
        assert summary["samples"] == telemetry.n_samples
        # Telemetry's peak is a system-wide (summed) sample; it is
        # bounded by per-node peak x node count.
        assert summary["peak_fwd"] <= result.peak_fwd_cells * result.n_nodes
        assert summary["peak_backlog"] >= summary["peak_fwd"]
        assert telemetry.time_of_peak("local") is not None

    def test_unknown_series_rejected(self):
        _net, _result, telemetry = run_with_telemetry()
        with pytest.raises(ValueError):
            telemetry.peak("queue-of-dreams")

    def test_throughput_derivative(self):
        net, _result, telemetry = run_with_telemetry()
        cells = telemetry.throughput_cells(net.timing.payload_bits)
        assert len(cells) == telemetry.n_samples
        assert all(c >= 0 for c in cells)
        with pytest.raises(ValueError):
            telemetry.throughput_cells(0)


class TestSparkline:
    def test_length_capped_at_width(self):
        line = ascii_sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_short_series_kept_whole(self):
        assert len(ascii_sparkline([1, 2, 3])) == 3

    def test_flat_zero_series(self):
        assert ascii_sparkline([0, 0, 0]).strip() == ""

    def test_peak_maps_to_densest_glyph(self):
        line = ascii_sparkline([0.0, 1.0])
        assert line[-1] == "@"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_sparkline([])
        with pytest.raises(ValueError):
            ascii_sparkline([1.0], width=0)


class _FakeNode:
    local_cells = 0
    vq_cells = 0
    fwd_cells = 0


class TestThroughputBaseline:
    """Regression: the first throughput delta must cover only the first
    sampled interval, even when telemetry attaches mid-run."""

    def test_fresh_run_first_delta_counts_from_zero(self):
        telemetry = Telemetry()
        telemetry.sample(0, [_FakeNode()], 0, 1000.0)
        telemetry.sample(1, [_FakeNode()], 0, 3000.0)
        assert telemetry.throughput_cells(1000) == [1.0, 2.0]

    def test_mid_run_attachment_rebases_baseline(self):
        # 5000 bits were delivered before telemetry attached at epoch
        # 10; that pre-history must not appear as one interval's burst.
        telemetry = Telemetry()
        telemetry.sample(10, [_FakeNode()], 0, 5000.0)
        telemetry.sample(11, [_FakeNode()], 0, 6000.0)
        assert telemetry.throughput_cells(1000) == [0.0, 1.0]

    def test_baseline_set_even_when_first_epoch_not_stored(self):
        # sample_every=4 skips epoch 5's datapoint, but the baseline
        # still rebases there so epoch 8's delta is pre-history-free.
        telemetry = Telemetry(sample_every=4)
        telemetry.sample(5, [_FakeNode()], 0, 9000.0)  # observed, not stored
        telemetry.sample(8, [_FakeNode()], 0, 9500.0)
        assert telemetry.n_samples == 1
        assert telemetry.throughput_cells(1000) == [0.5]

    def test_full_run_throughput_sums_to_delivered(self):
        net, result, telemetry = run_with_telemetry()
        payload = net.timing.payload_bits
        total = sum(telemetry.throughput_cells(payload)) * payload
        assert total == pytest.approx(result.delivered_bits)


class TestEdgeCases:
    def test_sampling_period_longer_than_run(self):
        _net, result, telemetry = run_with_telemetry(sample_every=10**6)
        assert result.epochs < 10**6
        assert telemetry.n_samples == 1  # epoch 0 only
        assert telemetry.epochs == [0]
        summary = telemetry.summary()
        assert summary["samples"] == 1

    def test_empty_run(self):
        net = SiriusNetwork(8, 4, seed=1)
        telemetry = Telemetry()
        result = net.run([], telemetry=telemetry)
        assert result.delivered_bits == 0
        assert telemetry.throughput_cells(1) in ([], [0.0])
        assert telemetry.summary()["peak_backlog"] == 0

    def test_summary_on_fresh_object(self):
        telemetry = Telemetry()
        summary = telemetry.summary()
        assert summary == {
            "samples": 0, "peak_local": 0, "peak_vq": 0, "peak_fwd": 0,
            "peak_backlog": 0, "final_backlog": 0,
        }
        assert telemetry.throughput_cells(1000) == []
        assert telemetry.time_of_peak("vq") is None
        assert telemetry.backlog_series() == []


class TestSparklineGuards:
    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ascii_sparkline([1.0, -0.5, 2.0])
