"""Per-flow fair queue used by the idealized baselines."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cell import Cell
from repro.core.node import FairQueue


def cells(flow_id, n, dst=1):
    return [Cell(flow_id, seq, 0, dst) for seq in range(n)]


class TestFairness:
    def test_round_robin_across_flows(self):
        queue = FairQueue()
        for cell in cells(1, 3) + cells(2, 3):
            queue.append(cell)
        order = [queue.popleft().flow_id for _ in range(6)]
        assert order == [1, 2, 1, 2, 1, 2]

    def test_short_flow_not_stuck_behind_elephant(self):
        queue = FairQueue()
        for cell in cells(1, 100):  # elephant first
            queue.append(cell)
        queue.append(Cell(2, 0, 0, 1))  # one-cell mouse
        served = [queue.popleft().flow_id for _ in range(4)]
        assert 2 in served  # mouse served within a couple of pops

    def test_within_flow_order_preserved(self):
        queue = FairQueue()
        for cell in cells(1, 5) + cells(2, 5):
            queue.append(cell)
        seqs = {1: [], 2: []}
        while queue:
            cell = queue.popleft()
            seqs[cell.flow_id].append(cell.seq)
        assert seqs[1] == list(range(5))
        assert seqs[2] == list(range(5))

    def test_len_and_bool(self):
        queue = FairQueue()
        assert not queue
        assert len(queue) == 0
        queue.append(Cell(1, 0, 0, 1))
        assert queue
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FairQueue().popleft()

    def test_flow_can_rejoin_after_draining(self):
        queue = FairQueue()
        queue.append(Cell(1, 0, 0, 1))
        queue.popleft()
        queue.append(Cell(1, 1, 0, 1))
        assert queue.popleft().seq == 1

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 30)),
                    min_size=1, max_size=60))
    def test_conservation_property(self, spec):
        """Everything appended comes back out exactly once, in order
        within each flow."""
        queue = FairQueue()
        appended = []
        seq_counter = {}
        for flow_id, _ in spec:
            seq = seq_counter.get(flow_id, 0)
            seq_counter[flow_id] = seq + 1
            cell = Cell(flow_id, seq, 0, 1)
            appended.append(cell)
            queue.append(cell)
        popped = []
        while queue:
            popped.append(queue.popleft())
        assert sorted(popped, key=lambda c: (c.flow_id, c.seq)) == sorted(
            appended, key=lambda c: (c.flow_id, c.seq)
        )
        per_flow = {}
        for cell in popped:
            per_flow.setdefault(cell.flow_id, []).append(cell.seq)
        for flow_id, seqs in per_flow.items():
            assert seqs == sorted(seqs)
