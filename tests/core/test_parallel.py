"""Parallel Sirius planes (§4.5 topology-level parallelism)."""

import random

import pytest

from repro.core.cell import Flow
from repro.core.parallel import ParallelSiriusPlanes


def make_flows(n_nodes, n_flows, seed=5, size=50_000):
    rng = random.Random(seed)
    flows = []
    time = 0.0
    for fid in range(n_flows):
        time += rng.expovariate(5e5)
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes - 1)
        if dst >= src:
            dst += 1
        flows.append(Flow(fid, src, dst, size_bits=size, arrival_time=time))
    return flows


class TestStriping:
    def test_hash_is_stateless_and_deterministic(self):
        planes = ParallelSiriusPlanes(3, 8, 4, striping="hash",
                                      uplink_multiplier=1.0)
        flows = make_flows(8, 30)
        a = planes.assign(flows)
        b = planes.assign(flows)
        assert a == b
        assert set(a.values()) <= {0, 1, 2}

    def test_round_robin_balances_counts(self):
        planes = ParallelSiriusPlanes(4, 8, 4, striping="round_robin",
                                      uplink_multiplier=1.0)
        flows = make_flows(8, 40)
        assignment = planes.assign(flows)
        counts = [list(assignment.values()).count(p) for p in range(4)]
        assert counts == [10, 10, 10, 10]

    def test_least_loaded_balances_bytes(self):
        planes = ParallelSiriusPlanes(2, 8, 4, striping="least_loaded",
                                      uplink_multiplier=1.0)
        # One elephant plus many mice: bytes must split, not counts.
        flows = [Flow(0, 0, 1, size_bits=1_000_000, arrival_time=0.0)]
        flows += [
            Flow(fid, 2, 3, size_bits=100_000, arrival_time=1e-9 * fid)
            for fid in range(1, 11)
        ]
        assignment = planes.assign(flows)
        bytes_per_plane = [0, 0]
        for flow in flows:
            bytes_per_plane[assignment[flow.flow_id]] += flow.size_bits
        assert max(bytes_per_plane) / sum(bytes_per_plane) < 0.6

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ParallelSiriusPlanes(2, 8, 4, striping="rainbow")

    def test_need_at_least_one_plane(self):
        with pytest.raises(ValueError):
            ParallelSiriusPlanes(0, 8, 4)


class TestExecution:
    def test_all_flows_complete_across_planes(self):
        planes = ParallelSiriusPlanes(2, 8, 4, uplink_multiplier=1.0)
        flows = make_flows(8, 40)
        result = planes.run(flows)
        assert len(result.completed_flows) == 40
        assert result.delivered_bits == pytest.approx(
            sum(f.size_bits for f in flows)
        )

    def test_aggregate_bandwidth_scales_with_planes(self):
        one = ParallelSiriusPlanes(1, 8, 4, uplink_multiplier=1.0)
        three = ParallelSiriusPlanes(3, 8, 4, uplink_multiplier=1.0)
        assert three.aggregate_bandwidth_bps == pytest.approx(
            3 * one.aggregate_bandwidth_bps
        )

    def test_parallelism_shortens_heavy_runs(self):
        # A saturating burst (all flows at t=0) drains faster over two
        # planes than one.
        flows = [
            Flow(f.flow_id, f.src, f.dst, f.size_bits, 0.0)
            for f in make_flows(8, 120, size=200_000)
        ]
        single = ParallelSiriusPlanes(1, 8, 4, uplink_multiplier=1.0)
        double = ParallelSiriusPlanes(2, 8, 4, uplink_multiplier=1.0)
        t_single = single.run([Flow(f.flow_id, f.src, f.dst, f.size_bits,
                                    f.arrival_time) for f in flows])
        t_double = double.run(flows)
        assert t_double.duration_s < t_single.duration_s

    def test_plane_share_accounting(self):
        planes = ParallelSiriusPlanes(2, 8, 4, striping="round_robin",
                                      uplink_multiplier=1.0)
        result = planes.run(make_flows(8, 20))
        assert result.plane_share(0) == pytest.approx(0.5)
        assert result.plane_share(1) == pytest.approx(0.5)
        assert result.n_planes == 2
