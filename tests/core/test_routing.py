"""Valiant load-balanced routing (paper §4.2)."""

import random
from collections import Counter

import pytest

from repro.core import ValiantRouter


class TestIntermediateChoice:
    def test_never_picks_source(self):
        router = ValiantRouter(8, node=3, rng=random.Random(1))
        for _ in range(500):
            assert router.pick_intermediate(dst=5) != 3

    def test_roughly_uniform_over_candidates(self):
        router = ValiantRouter(8, node=0, rng=random.Random(2))
        counts = Counter(router.pick_intermediate(dst=4) for _ in range(7000))
        assert set(counts) == set(range(1, 8))
        for node in range(1, 8):
            assert 700 <= counts[node] <= 1300  # 1000 +/- 30%

    def test_destination_is_legal_intermediate_by_default(self):
        router = ValiantRouter(4, node=0, rng=random.Random(3))
        picks = {router.pick_intermediate(dst=2) for _ in range(200)}
        assert 2 in picks

    def test_exclude_destination_mode(self):
        router = ValiantRouter(4, node=0, rng=random.Random(4),
                               exclude_destination=True)
        for _ in range(200):
            assert router.pick_intermediate(dst=2) != 2

    def test_exclude_destination_impossible_with_two_nodes(self):
        router = ValiantRouter(2, node=0, exclude_destination=True)
        with pytest.raises(ValueError):
            router.pick_intermediate(dst=1)


class TestSampling:
    def test_samples_are_distinct(self):
        router = ValiantRouter(16, node=0, rng=random.Random(5))
        sample = router.sample_intermediates(10)
        assert len(sample) == len(set(sample)) == 10
        assert 0 not in sample

    def test_sample_capped_at_candidates(self):
        router = ValiantRouter(4, node=1)
        assert len(router.sample_intermediates(99)) == 3

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            ValiantRouter(4, node=0).sample_intermediates(-1)


class TestHops:
    def test_via_destination_is_single_hop(self):
        router = ValiantRouter(8, node=0)
        assert router.hops_for(intermediate=5, dst=5) == 1

    def test_detour_is_two_hops(self):
        router = ValiantRouter(8, node=0)
        assert router.hops_for(intermediate=3, dst=5) == 2


class TestValidation:
    def test_destination_must_differ_from_source(self):
        router = ValiantRouter(8, node=2)
        with pytest.raises(ValueError):
            router.pick_intermediate(dst=2)

    def test_construction(self):
        with pytest.raises(ValueError):
            ValiantRouter(1, node=0)
        with pytest.raises(ValueError):
            ValiantRouter(4, node=4)

    def test_candidates_exclude_self(self):
        router = ValiantRouter(5, node=2)
        assert router.candidates == (0, 1, 3, 4)
