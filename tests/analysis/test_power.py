"""Power models (paper Fig 2a, Fig 6a, §1/§2/§5 anchors)."""

import pytest

from repro.analysis import NetworkPowerModel, SiriusPowerModel


class TestScaleTax:
    def test_direct_fibre_is_50w_per_tbps(self):
        assert NetworkPowerModel().power_per_tbps(2) == pytest.approx(50.0)

    def test_65k_nodes_near_487w(self):
        # Fig 2a's headline: ~487 W/Tbps for a large (65K-node) DC.
        value = NetworkPowerModel().power_per_tbps(65536)
        assert value == pytest.approx(487.0, rel=0.1)

    def test_power_grows_with_each_layer(self):
        model = NetworkPowerModel()
        series = model.scale_tax_series()
        values = [row["watts_per_tbps"] for row in series]
        assert values == sorted(values)
        assert [row["layers"] for row in series] == [0, 1, 2, 3, 4]

    def test_100pbps_network_needs_about_48mw(self):
        # §1: "a prohibitive 48.7 MW".
        power = NetworkPowerModel().datacenter_power_mw(100.0)
        assert power == pytest.approx(48.7, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkPowerModel().power_per_tbps(1)
        with pytest.raises(ValueError):
            NetworkPowerModel().datacenter_power_mw(0.0)


class TestFig6a:
    def test_ratio_23_percent_at_3x(self):
        model = SiriusPowerModel()
        assert model.ratio_vs_esn(3.0) == pytest.approx(0.23, abs=0.02)

    def test_ratio_26_percent_at_5x(self):
        model = SiriusPowerModel()
        assert model.ratio_vs_esn(5.0) == pytest.approx(0.26, abs=0.03)

    def test_headline_74_to_77_percent_savings(self):
        savings = SiriusPowerModel().headline_power_savings()
        assert 0.70 <= savings["savings_at_5x"] <= savings["savings_at_3x"]
        assert savings["savings_at_3x"] == pytest.approx(0.77, abs=0.02)

    def test_ratio_monotone_in_laser_overhead(self):
        model = SiriusPowerModel()
        series = model.fig6a_series()
        ratios = [row["power_ratio"] for row in series]
        assert ratios == sorted(ratios)
        assert [row["laser_overhead"] for row in series] == [1, 3, 5, 7, 10, 20]

    def test_sirius_stays_below_esn_even_at_20x(self):
        assert SiriusPowerModel().ratio_vs_esn(20.0) < 1.0

    def test_laser_sharing_reduces_power(self):
        shared = SiriusPowerModel(laser_sharing=8)
        unshared = SiriusPowerModel(laser_sharing=1)
        assert shared.power_per_tbps(5.0) < unshared.power_per_tbps(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SiriusPowerModel().channel_power_w(0.5)
