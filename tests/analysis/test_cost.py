"""Cost model (paper §5, Fig 6b)."""

import pytest

from repro.analysis import NetworkCostModel


class TestHeadlineAnchors:
    def test_28_percent_of_nonblocking_esn(self):
        ratios = NetworkCostModel().headline_ratios()
        assert ratios["vs_nonblocking"] == pytest.approx(0.28, abs=0.03)

    def test_53_percent_of_oversubscribed_esn(self):
        ratios = NetworkCostModel().headline_ratios()
        assert ratios["vs_oversubscribed"] == pytest.approx(0.53, abs=0.04)

    def test_55_percent_of_electrical_variant(self):
        ratios = NetworkCostModel().headline_ratios()
        assert ratios["vs_electrical_variant"] == pytest.approx(0.55,
                                                                abs=0.04)


class TestFig6bShape:
    def test_ratio_monotone_in_grating_cost(self):
        series = NetworkCostModel().fig6b_series()
        ratios = [row["vs_nonblocking"] for row in series]
        assert ratios == sorted(ratios)

    def test_5x_laser_error_bar_above_3x(self):
        for row in NetworkCostModel().fig6b_series():
            assert row["vs_nonblocking_5x_laser"] > row["vs_nonblocking"]

    def test_sirius_always_cheaper_than_nonblocking(self):
        for row in NetworkCostModel().fig6b_series():
            assert row["vs_nonblocking"] < 0.5

    def test_sirius_cheaper_than_oversubscribed_despite_nonblocking(self):
        # §5's punchline: Sirius costs ~half of even an oversubscribed
        # ESN while delivering non-blocking connectivity.
        for row in NetworkCostModel().fig6b_series():
            assert row["vs_oversubscribed"] < 1.0


class TestComponents:
    def test_oversubscription_reduces_esn_cost(self):
        model = NetworkCostModel()
        assert model.esn_cost(3.0) < model.esn_cost(1.0)

    def test_rack_stage_never_oversubscribed(self):
        model = NetworkCostModel()
        # At infinite oversubscription only the rack stage remains.
        assert model.esn_cost(1e9) == pytest.approx(
            2 * model.transceiver_cost_usd, rel=1e-6
        )

    def test_tunable_laser_overhead_raises_cost(self):
        model = NetworkCostModel()
        assert (model.sirius_transceiver_cost(5.0)
                > model.sirius_transceiver_cost(3.0))

    def test_grating_port_cost_linear(self):
        model = NetworkCostModel()
        assert model.grating_port_cost(0.5) == pytest.approx(
            2 * model.grating_port_cost(0.25)
        )

    def test_switch_port_cost(self):
        # $5000 / 64 ports.
        assert NetworkCostModel().switch_port_cost == pytest.approx(78.125)

    def test_validation(self):
        model = NetworkCostModel()
        with pytest.raises(ValueError):
            model.esn_cost(0.5)
        with pytest.raises(ValueError):
            model.sirius_transceiver_cost(0.0)
        with pytest.raises(ValueError):
            model.grating_port_cost(0.0)
        with pytest.raises(ValueError):
            model.grating_port_cost(1.5)
