"""ASCII chart rendering."""

import pytest

from repro.analysis.plotting import ascii_chart


class TestChart:
    def test_single_series_renders(self):
        chart = ascii_chart({"a": [(0, 0), (1, 1), (2, 4)]},
                            width=20, height=6)
        assert "o" in chart
        assert "o a" in chart  # legend

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_chart({
            "one": [(0, 1), (1, 2)],
            "two": [(0, 2), (1, 1)],
        }, width=20, height=6)
        assert "o one" in chart
        assert "x two" in chart

    def test_title_included(self):
        chart = ascii_chart({"a": [(0, 1)]}, title="Fig 9b", width=10,
                            height=4)
        assert chart.splitlines()[0] == "Fig 9b"

    def test_log_scale_compresses_decades(self):
        chart = ascii_chart({"a": [(0, 1), (1, 1000)]}, logy=True,
                            width=16, height=8)
        # y-axis labels show the original values.
        assert "1e+03" in chart or "1000" in chart

    def test_axis_labels_span_data(self):
        chart = ascii_chart({"a": [(10, 5), (20, 9)]}, width=20, height=5)
        assert "10" in chart
        assert "20" in chart
        assert "9" in chart

    def test_flat_series_ok(self):
        chart = ascii_chart({"a": [(0, 3), (1, 3)]}, width=12, height=4)
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 1)]}, width=2, height=2)
