"""Statistics helpers."""

import pytest

from repro.analysis import percentile, summarize_fcts
from repro.analysis.stats import cdf_points, geometric_mean


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_p99_of_100(self):
        values = list(range(1, 101))
        assert percentile(values, 99) == 99

    def test_max(self):
        assert percentile([5, 1, 9], 100) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 0)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummaries:
    def test_summary_fields(self):
        summary = summarize_fcts([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == 2.0
        assert summary["max"] == 4.0

    def test_empty_summary(self):
        summary = summarize_fcts([])
        assert summary["count"] == 0
        assert summary["mean"] is None


class TestCdf:
    def test_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)),
                          (2.0, pytest.approx(2 / 3)),
                          (3.0, pytest.approx(1.0))]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
