"""Capacity/traffic growth trends (paper Fig 1)."""

import pytest

from repro.analysis import CapacityTrend


class TestTrends:
    def test_anchors_at_2020(self):
        trend = CapacityTrend()
        assert trend.traffic_bps(2020) == pytest.approx(100e15)
        assert trend.switch_capacity_bps(2020) == pytest.approx(25.6e12)

    def test_traffic_doubles_yearly(self):
        trend = CapacityTrend()
        assert trend.traffic_bps(2021) == pytest.approx(
            2 * trend.traffic_bps(2020)
        )

    def test_switches_double_every_two_years(self):
        trend = CapacityTrend()
        assert trend.switch_capacity_bps(2022) == pytest.approx(
            2 * trend.switch_capacity_bps(2020)
        )

    def test_gap_widens_over_time(self):
        trend = CapacityTrend()
        gaps = [trend.gap_factor(y) for y in range(2010, 2026)]
        assert gaps == sorted(gaps)

    def test_slowdown_after_2024(self):
        trend = CapacityTrend()
        growth_before = (trend.switch_capacity_bps(2024)
                         / trend.switch_capacity_bps(2022))
        growth_after = (trend.switch_capacity_bps(2027)
                        / trend.switch_capacity_bps(2025))
        assert growth_after < growth_before

    def test_series_covers_fig1_years(self):
        rows = CapacityTrend().series()
        assert rows[0]["year"] == 2005
        assert rows[-1]["year"] == 2025
        for row in rows:
            assert row["traffic_pbps"] > 0
            assert row["switch_pbps"] > 0
