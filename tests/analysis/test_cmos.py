"""CMOS scaling slowdown dataset (paper Fig 2b)."""

import pytest

from repro.analysis import CmosScaling


class TestScaling:
    def test_five_generations(self):
        rows = CmosScaling().series()
        assert len(rows) == 5
        assert rows[0]["node"] == "16+"
        assert rows[-1]["node"] == "5"

    def test_normalized_to_first_generation(self):
        first = CmosScaling().series()[0]
        assert first["perf_per_area"] == 1.0
        assert first["perf_per_power"] == 1.0
        assert first["ideal"] == 1.0

    def test_actual_falls_short_of_ideal(self):
        rows = CmosScaling().series()
        # By the last generations the gap below ideal is large (Fig 2b).
        assert rows[-1]["ideal"] == 16.0
        assert rows[-1]["perf_per_power"] < rows[-1]["ideal"] / 2

    def test_shortfall_metric(self):
        scaling = CmosScaling()
        assert scaling.shortfall("perf_per_power") < 0.5
        assert scaling.shortfall("perf_per_area") < 0.5
        with pytest.raises(ValueError):
            scaling.shortfall("transistors")

    def test_power_scales_worse_than_area(self):
        # The paper: SERDES/analog scaling (power) is the harder wall.
        scaling = CmosScaling()
        assert (scaling.shortfall("perf_per_power")
                < scaling.shortfall("perf_per_area"))

    def test_generation_gains_decline(self):
        gains = CmosScaling().generation_gains()
        assert gains[0] > gains[-1]

    def test_scaling_has_slowed(self):
        assert CmosScaling().scaling_has_slowed()

    def test_ideal_validation(self):
        with pytest.raises(ValueError):
            CmosScaling().ideal_scaling(-1)
