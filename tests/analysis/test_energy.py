"""Energy-per-bit accounting (§5 applied to simulation results)."""

import pytest

from repro import FlowWorkload, SiriusNetwork, WorkloadConfig
from repro.analysis.energy import (
    EnergyReport,
    energy_comparison,
    esn_energy,
    sirius_energy,
)


@pytest.fixture(scope="module")
def sim_result():
    net = SiriusNetwork(8, 4, uplink_multiplier=1.0, seed=1)
    workload = FlowWorkload(WorkloadConfig(
        n_nodes=8, load=0.5,
        node_bandwidth_bps=net.reference_node_bandwidth_bps,
        mean_flow_bits=100_000, truncation_bits=1_000_000, seed=3,
    ))
    return net.run(workload.generate(100))


class TestEnergyReport:
    def test_energy_is_power_times_time(self):
        report = EnergyReport(delivered_bits=1e9, duration_s=2.0,
                              network_power_w=100.0)
        assert report.energy_j == pytest.approx(200.0)
        # 200 J over 1e9 bits = 2e-7 J/bit = 200,000 pJ/bit.
        assert report.picojoules_per_bit == pytest.approx(2e5)

    def test_zero_bits_is_infinite_energy_per_bit(self):
        report = EnergyReport(delivered_bits=0, duration_s=1.0,
                              network_power_w=10.0)
        assert report.picojoules_per_bit == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyReport(delivered_bits=-1, duration_s=1.0,
                         network_power_w=1.0)
        with pytest.raises(ValueError):
            EnergyReport(delivered_bits=1, duration_s=0.0,
                         network_power_w=1.0)
        with pytest.raises(ValueError):
            EnergyReport(delivered_bits=1, duration_s=1.0,
                         network_power_w=-1.0)


class TestComparison:
    def test_sirius_uses_about_a_quarter_of_the_energy(self, sim_result):
        comparison = energy_comparison(sim_result, laser_overhead=3.0)
        # The §5 headline, restated in pJ/bit.
        assert comparison["ratio"] == pytest.approx(0.23, abs=0.03)

    def test_higher_laser_overhead_costs_more(self, sim_result):
        low = sirius_energy(sim_result, laser_overhead=3.0)
        high = sirius_energy(sim_result, laser_overhead=10.0)
        assert high.picojoules_per_bit > low.picojoules_per_bit

    def test_esn_energy_positive(self, sim_result):
        report = esn_energy(sim_result)
        assert report.network_power_w > 0
        assert report.picojoules_per_bit > 0
