"""Optical switching technology survey (§2.2, §8)."""

import pytest

from repro.analysis.technologies import (
    TECHNOLOGIES,
    SwitchTechnology,
    fastest_passive_core,
    reconfiguration_spread_orders,
    survey,
)


class TestSurvey:
    def test_packet_switching_feasibility(self):
        # Device-level, only the nanosecond technologies pass the §2.2
        # test: SOA space switches (whose §8 problem is cascading loss,
        # not speed) and Sirius v2.  Sirius v2 is the only *passive-
        # core* option that passes.
        rows = survey()
        feasible = {r["name"] for r in rows if r["packet_switching"]}
        assert feasible == {
            "SOA space switch [9]",
            "disaggregated laser + AWGR (Sirius v2)",
        }

    def test_mems_needs_a_separate_packet_network(self):
        mems = next(t for t in TECHNOLOGIES if "MEMS" in t.name)
        # Overhead far above 1: switching dwarfs the packet itself.
        assert mems.overhead_at() > 1000
        assert not mems.supports_packet_switching()

    def test_six_orders_of_magnitude_spread(self):
        # §8: switching times vary "by almost six orders of magnitude";
        # including Sirius v2 the span exceeds seven.
        assert reconfiguration_spread_orders() >= 6.0

    def test_fastest_passive_core_is_sirius_v2(self):
        assert "Sirius v2" in fastest_passive_core().name
        assert fastest_passive_core().reconfiguration_s < 1e-9

    def test_overhead_scales_with_packet_size(self):
        v1 = next(t for t in TECHNOLOGIES if "Sirius v1" in t.name)
        # Large packets amortize the 92 ns guardband; tiny ones don't.
        assert v1.overhead_at(packet_bytes=9000) < 0.1
        assert v1.overhead_at(packet_bytes=576) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchTechnology("broken", 0.0, "-", "-")
