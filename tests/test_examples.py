"""Smoke-run the example scripts (they must never rot).

The two heavyweight examples (datacenter_comparison, scale_out) are
exercised by the benchmark suite; the fast ones run here.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = (
    "quickstart.py",
    "prototype_demo.py",
    "design_space.py",
    "failure_resilience.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_reports_core_metrics(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "normalized goodput" in out
    assert "short-flow FCT p99" in out
    assert "1000/1000" in out


def test_failure_example_reports_no_blackholing(capsys):
    runpy.run_path(str(EXAMPLES / "failure_resilience.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "retransmitted by their sources" in out
    assert "100%" in out  # schedule adjustment regains full bandwidth
