"""Delta/cursor snapshots: only what changed ships, and nothing is lost.

The live service polls ``collect_delta`` several times a second; these
tests pin the contract it relies on: unchanged instruments are skipped,
tracked gauges ship only the points appended inside the window (with an
offset for gap detection), cursors round-trip through JSON, and a
concurrent writer can at worst cause a double-send, never a miss.
"""

import json

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry


def _names(samples):
    return sorted({s["name"] for s in samples})


class TestCollectDelta:
    def test_none_cursor_ships_everything(self):
        registry = MetricsRegistry()
        registry.counter("cells").inc(3)
        registry.gauge("depth").set(7)
        samples, state = registry.collect_delta(None)
        assert _names(samples) == ["cells", "depth"]
        assert set(state) == {"cells", "depth"}

    def test_unchanged_instruments_are_skipped(self):
        registry = MetricsRegistry()
        registry.counter("cells").inc(3)
        registry.gauge("depth").set(7)
        _samples, cursor = registry.collect_delta(None)
        registry.gauge("depth").set(9)
        samples, _cursor = registry.collect_delta(cursor)
        assert _names(samples) == ["depth"]

    def test_quiet_registry_ships_nothing(self):
        registry = MetricsRegistry()
        registry.counter("cells").inc()
        _samples, cursor = registry.collect_delta(None)
        samples, again = registry.collect_delta(cursor)
        assert samples == []
        assert again == cursor

    def test_tracked_gauge_ships_only_new_points(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("backlog", track=True)
        gauge.set(1, at=0)
        gauge.set(2, at=4)
        _samples, cursor = registry.collect_delta(None)
        gauge.set(3, at=8)
        gauge.set(4, at=12)
        samples, _cursor = registry.collect_delta(cursor)
        (sample,) = samples
        assert sample["points"] == [[8, 3], [12, 4]]
        assert sample["points_offset"] == 2

    def test_points_offset_only_after_a_prior_window(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("backlog", track=True)
        gauge.set(1, at=0)
        samples, cursor = registry.collect_delta({})
        # First window: nothing previously shipped, no offset field.
        assert "points_offset" not in samples[0]
        gauge.set(2, at=4)
        samples, _cursor = registry.collect_delta(cursor)
        assert samples[0]["points_offset"] == 1

    def test_cursor_json_roundtrip(self):
        registry = MetricsRegistry()
        registry.gauge("backlog", track=True).set(5, at=0)
        registry.counter("cells").inc()
        _samples, cursor = registry.collect_delta(None)
        wire = json.loads(json.dumps(cursor))
        registry.gauge("backlog", track=True).set(6, at=4)
        samples, _next = registry.collect_delta(wire)
        assert _names(samples) == ["backlog"]
        (sample,) = samples
        assert sample["points"] == [[4, 6]]

    def test_cursor_method_matches_delta_state(self):
        registry = MetricsRegistry()
        registry.gauge("backlog", track=True).set(5, at=0)
        registry.counter("cells").inc()
        assert registry.cursor() == registry.collect_delta(None)[1]

    def test_at_least_once_on_interleaved_write(self):
        # A mutation between cursor capture and the next delta is
        # re-shipped (never silently skipped): the cursor records the
        # mutation count captured BEFORE collection.
        registry = MetricsRegistry()
        counter = registry.counter("cells")
        counter.inc()
        _samples, cursor = registry.collect_delta(None)
        counter.inc()  # concurrent writer between ticks
        samples, cursor2 = registry.collect_delta(cursor)
        assert _names(samples) == ["cells"]
        samples2, _ = registry.collect_delta(cursor2)
        assert samples2 == []

    def test_new_instrument_appears_in_next_delta(self):
        registry = MetricsRegistry()
        registry.counter("cells").inc()
        _samples, cursor = registry.collect_delta(None)
        registry.gauge("late").set(1)
        samples, state = registry.collect_delta(cursor)
        assert _names(samples) == ["late"]
        assert "late" in state


class TestSnapshotModes:
    def test_legacy_snapshot_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("cells").inc(2)
        snap = registry.snapshot()
        assert set(snap) == {"metrics"}
        assert _names(snap["metrics"]) == ["cells"]

    def test_incremental_snapshot_carries_cursor(self):
        registry = MetricsRegistry()
        registry.counter("cells").inc(2)
        first = registry.snapshot(since={})
        assert set(first) == {"metrics", "cursor"}
        registry.counter("cells").inc()
        second = registry.snapshot(since=first["cursor"])
        assert _names(second["metrics"]) == ["cells"]
        third = registry.snapshot(since=second["cursor"])
        assert third["metrics"] == []

    def test_null_registry_parity(self):
        registry = NullMetricsRegistry()
        assert registry.cursor() == {}
        assert registry.collect_delta(None) == ([], {})
        assert registry.snapshot() == {"metrics": []}
        assert registry.snapshot(since={}) == {"metrics": [], "cursor": {}}
