"""Integration tests: repro.obs threaded through the simulators.

Covers the ISSUE acceptance criteria: a traced run produces events,
metrics and a profile that agree with the SimulationResult, and the
per-epoch phase timing sums to within 10 % of the measured run
wall-clock.
"""

import pytest

from repro import (
    FailurePlan,
    FlowWorkload,
    FluidNetwork,
    Observation,
    SiriusNetwork,
    WorkloadConfig,
)
from repro.obs import NULL_OBS
from repro.obs.metrics import MetricsRegistry
from repro.obs.observation import Observation as ObservationClass


def small_run(obs=None, failure_plan=None, **net_kwargs):
    net = SiriusNetwork(8, 4, seed=3, **net_kwargs)
    workload = FlowWorkload(WorkloadConfig(
        n_nodes=8, load=0.6,
        node_bandwidth_bps=net.reference_node_bandwidth_bps, seed=4,
    ))
    result = net.run(workload.generate(80), obs=obs,
                     failure_plan=failure_plan)
    return net, result


class TestObservationBundle:
    def test_default_is_noop(self):
        obs = Observation()
        assert not obs.enabled
        assert not obs.registry.enabled
        assert not obs.tracer.enabled
        assert not obs.profiler.enabled

    def test_recording_enables_all_planes(self):
        obs = Observation.recording()
        assert obs.enabled
        assert obs.registry.enabled
        assert obs.tracer.enabled
        assert obs.profiler.enabled

    def test_invalid_sample_every(self):
        with pytest.raises(ValueError):
            Observation(sample_every=0)

    def test_null_obs_is_shared_noop(self):
        assert isinstance(NULL_OBS, ObservationClass)
        assert not NULL_OBS.enabled


class TestNetworkIntegration:
    def test_run_without_obs_matches_run_with_noop_obs(self):
        _, bare = small_run(obs=None)
        _, nooped = small_run(obs=Observation())
        assert bare.delivered_bits == nooped.delivered_bits
        assert bare.epochs == nooped.epochs

    def test_registry_counters_agree_with_result(self):
        obs = Observation.recording()
        _, result = small_run(obs=obs)
        registry = obs.registry
        assert registry.counter("delivered_bits_total").value() == (
            pytest.approx(result.delivered_bits)
        )
        tx = registry.counter("cells_transmitted_total").value()
        assert tx == len(obs.tracer.select("cell.dequeue"))
        assert tx > 0

    def test_grant_counters_are_labelled_per_pair(self):
        obs = Observation.recording()
        small_run(obs=obs)
        issued = obs.registry.get("grants_issued_total")
        assert issued is not None
        assert len(issued.label_sets()) > 1  # more than one (src, dst) pair
        total = sum(
            issued.value(**dict(labels)) for labels in issued.label_sets()
        )
        assert total == len(obs.tracer.select("grant.issued"))

    def test_tracer_records_run_structure(self):
        obs = Observation.recording()
        _, result = small_run(obs=obs)
        counts = obs.tracer.counts_by_type()
        assert counts["epoch"] == result.epochs
        assert counts["flow.arrival"] == len(result.flows)
        assert counts["flow.completion"] == len(result.completed_flows)
        assert counts["cell.enqueue"] >= counts["cell.dequeue"] > 0

    def test_queue_gauges_sampled_at_cadence(self):
        obs = Observation.recording(sample_every=5)
        _, result = small_run(obs=obs)
        points = obs.registry.gauge("net_backlog_cells", track=True).series()
        assert points  # sampled at least once
        epochs = [at for at, _v in points]
        assert all(at % 5 == 0 for at in epochs)
        assert len(points) == pytest.approx(result.epochs / 5, abs=2)
        per_node = obs.registry.get("vq_cells")
        assert per_node is not None and per_node.label_sets()

    def test_failure_run_emits_failure_events(self):
        obs = Observation.recording()
        plan = FailurePlan.single_failure(3, at_epoch=40, recover_at=200)
        _, result = small_run(obs=obs, failure_plan=plan)
        assert len(obs.tracer.select("failure.announce")) == 1
        assert len(obs.tracer.select("failure.recover")) == 1
        registry = obs.registry
        assert registry.counter("failure_events_total").value(kind="fail") == 1
        assert registry.counter(
            "failure_events_total").value(kind="recover") == 1
        assert registry.counter("failed_flows_total").value() == (
            result.failed_flows
        )
        assert registry.counter("retransmitted_cells_total").value() == (
            result.retransmitted_cells
        )

    def test_phase_timing_sums_to_run_wallclock(self):
        """Acceptance: lap totals within 10 % of measured wall-clock."""
        obs = Observation.recording()
        small_run(obs=obs)
        profiler = obs.profiler
        assert profiler.total_run_s > 0
        assert profiler.coverage() == pytest.approx(1.0, abs=0.10)
        phases = set(profiler.totals_s)
        assert {"deliver", "resolve", "admit", "control",
                "transmit", "observe"} <= phases

    def test_shared_registry_with_telemetry(self):
        from repro.core.telemetry import Telemetry

        registry = MetricsRegistry()
        obs = Observation(registry=registry)
        telemetry = Telemetry(sample_every=1, registry=registry)
        net = SiriusNetwork(8, 4, seed=3)
        workload = FlowWorkload(WorkloadConfig(
            n_nodes=8, load=0.5,
            node_bandwidth_bps=net.reference_node_bandwidth_bps, seed=4,
        ))
        net.run(workload.generate(40), telemetry=telemetry, obs=obs)
        # Both views publish into the same registry.
        names = set(registry.names())
        assert "telemetry_local_cells" in names
        assert "net_backlog_cells" in names


class TestFluidIntegration:
    def fluid_run(self, obs=None):
        net = FluidNetwork(8, 1e9)
        workload = FlowWorkload(WorkloadConfig(
            n_nodes=8, load=0.5, node_bandwidth_bps=1e9, seed=6,
        ))
        return net.run(workload.generate(50), obs=obs)

    def test_fluid_events_and_counters(self):
        obs = Observation.recording()
        result = self.fluid_run(obs=obs)
        counts = obs.tracer.counts_by_type()
        assert counts["flow.arrival"] == len(result.flows)
        assert counts["flow.completion"] == len(result.completed_flows)
        registry = obs.registry
        assert registry.counter("delivered_bits_total").value() == (
            pytest.approx(result.delivered_bits)
        )
        assert registry.counter("fluid_events_total").value(
            kind="arrival") == len(result.flows)
        assert registry.gauge("fluid_active_flows", track=True).series()

    def test_fluid_profile_covers_run(self):
        obs = Observation.recording()
        self.fluid_run(obs=obs)
        assert obs.profiler.coverage() == pytest.approx(1.0, abs=0.10)
        assert {"advance", "recompute"} <= set(obs.profiler.totals_s)

    def test_fluid_noop_obs_unchanged(self):
        bare = self.fluid_run(obs=None)
        nooped = self.fluid_run(obs=Observation())
        assert bare.delivered_bits == pytest.approx(nooped.delivered_bits)
