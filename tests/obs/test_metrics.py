"""Unit tests for the labelled metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("cells_total")
        assert counter.value() == 0
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labelled_children_are_independent(self):
        counter = Counter("grant_rate")
        counter.inc(src=1, dst=2)
        counter.inc(3, src=2, dst=1)
        assert counter.value(src=1, dst=2) == 1
        assert counter.value(src=2, dst=1) == 3
        assert counter.value(src=9, dst=9) == 0

    def test_label_order_is_irrelevant(self):
        counter = Counter("grant_rate")
        counter.inc(src=1, dst=2)
        counter.inc(dst=2, src=1)
        assert counter.value(src=1, dst=2) == 2

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_collect_shape(self):
        counter = Counter("c", "help text")
        counter.inc(node=3)
        (sample,) = counter.collect()
        assert sample["name"] == "c"
        assert sample["type"] == "counter"
        assert sample["labels"] == {"node": "3"}
        assert sample["value"] == 1


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge("vq_cells")
        gauge.set(7, node=12)
        assert gauge.value(node=12) == 7
        gauge.set(3, node=12)
        assert gauge.value(node=12) == 3

    def test_add(self):
        gauge = Gauge("depth")
        gauge.add(5)
        gauge.add(-2)
        assert gauge.value() == 3

    def test_tracked_series_records_points(self):
        gauge = Gauge("backlog", track=True)
        gauge.set(10, at=0)
        gauge.set(12, at=4)
        assert gauge.series() == [(0, 10), (4, 12)]

    def test_untracked_gauge_keeps_no_series(self):
        gauge = Gauge("backlog")
        gauge.set(10, at=0)
        assert gauge.series() == []


class TestHistogram:
    def test_observe_count_sum(self):
        hist = Histogram("fct")
        for value in (1, 2, 3):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == 6

    def test_quantile_is_bucket_upper_bound(self):
        hist = Histogram("fct", buckets=(1, 10, 100))
        for value in (0.5, 5, 5, 50):
            hist.observe(value)
        assert hist.quantile(0.5) == 10
        assert hist.quantile(1.0) == 100

    def test_quantile_of_empty_histogram(self):
        assert Histogram("fct").quantile(0.5) is None


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("cells_total")
        second = registry.counter("cells_total")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_gauge_cannot_gain_tracking_after_creation(self):
        registry = MetricsRegistry()
        registry.gauge("g")  # untracked: series were never recorded
        with pytest.raises(ValueError):
            registry.gauge("g", track=True)

    def test_tracked_gauge_serves_untracked_requests(self):
        registry = MetricsRegistry()
        tracked = registry.gauge("g", track=True)
        assert registry.gauge("g") is tracked

    def test_collect_spans_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        names = {sample["name"] for sample in registry.collect()}
        assert names == {"a", "b"}

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NULL_REGISTRY.enabled


class TestNullRegistry:
    def test_all_updates_are_swallowed(self):
        registry = NullMetricsRegistry()
        counter = registry.counter("c")
        counter.inc(100, node=1)
        assert counter.value(node=1) == 0
        gauge = registry.gauge("g", track=True)
        gauge.set(5, at=0)
        assert gauge.series() == []
        assert registry.collect() == []
        assert len(registry) == 0
