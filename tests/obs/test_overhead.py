"""Tier-1 guard: the no-op Observation must be (nearly) free.

The whole design of repro.obs rests on hot paths gating on cached
``enabled`` flags, so that passing ``obs=Observation()`` (all planes
null) costs the same as passing nothing at all.  This benchmark-style
test times both and bounds the difference at < 5 % wall-clock
(best-of-N timing with retries, so scheduler noise does not flake CI).
"""

import time

from repro import FlowWorkload, Observation, SiriusNetwork, WorkloadConfig

#: Best-of-N repetitions per arm; retries if the bound is missed once.
_REPS = 3
_ATTEMPTS = 3
_MAX_OVERHEAD = 0.05


def _flows():
    net = SiriusNetwork(16, 4, seed=11)
    workload = FlowWorkload(WorkloadConfig(
        n_nodes=16, load=0.7,
        node_bandwidth_bps=net.reference_node_bandwidth_bps, seed=12,
    ))
    return workload.generate(300)


def _time_run(obs):
    """Best-of-_REPS wall-clock for one simulation arm."""
    best = None
    for _ in range(_REPS):
        net = SiriusNetwork(16, 4, seed=11)
        flows = _flows()
        t0 = time.perf_counter()
        net.run(flows, obs=obs)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_noop_observation_overhead_below_five_percent():
    ratios = []
    for _ in range(_ATTEMPTS):
        baseline = _time_run(None)
        nooped = _time_run(Observation())
        ratio = nooped / baseline
        ratios.append(ratio)
        if ratio <= 1 + _MAX_OVERHEAD:
            return
    raise AssertionError(
        f"no-op Observation overhead above {_MAX_OVERHEAD:.0%} in all "
        f"{_ATTEMPTS} attempts: ratios {[f'{r:.3f}' for r in ratios]}"
    )
