"""Unit tests for the phase profiler (repro.obs.profiling)."""

import pytest

from repro.obs.profiling import NULL_PROFILER, PhaseProfiler


class FakeClock:
    """Deterministic clock: returns queued times, advancing one per call."""

    def __init__(self, *times):
        self.times = list(times)

    def __call__(self):
        return self.times.pop(0)


class TestLapChain:
    def test_consecutive_laps_cover_the_run(self):
        # start=0, lap a @1, lap b @3, lap c @6, end @6
        profiler = PhaseProfiler(clock=FakeClock(0.0, 1.0, 3.0, 6.0, 6.0))
        t = profiler.start_run()
        t = profiler.lap("a", t)
        t = profiler.lap("b", t)
        profiler.lap("c", t)
        profiler.end_run()
        assert profiler.totals_s == {"a": 1.0, "b": 2.0, "c": 3.0}
        assert profiler.total_run_s == 6.0
        assert profiler.coverage() == 1.0

    def test_laps_accumulate_across_epochs(self):
        profiler = PhaseProfiler(clock=FakeClock(0.0, 1.0, 2.0, 4.0, 4.0))
        t = profiler.start_run()
        t = profiler.lap("deliver", t)
        t = profiler.lap("deliver", t)
        profiler.lap("deliver", t)
        profiler.end_run()
        assert profiler.totals_s == {"deliver": 4.0}
        assert profiler.counts == {"deliver": 3}

    def test_per_epoch_rows(self):
        profiler = PhaseProfiler(
            per_epoch=True, clock=FakeClock(0.0, 1.0, 3.0, 3.0)
        )
        t = profiler.start_run()
        profiler.set_epoch(0)
        t = profiler.lap("deliver", t)
        profiler.set_epoch(1)
        profiler.lap("deliver", t)
        profiler.end_run()
        assert profiler.epoch_rows == [(0, "deliver", 1.0), (1, "deliver", 2.0)]

    def test_end_run_without_start_raises(self):
        with pytest.raises(RuntimeError):
            PhaseProfiler().end_run()


class TestAnalysis:
    def test_breakdown_sorted_by_share(self):
        profiler = PhaseProfiler(clock=FakeClock(0.0, 1.0, 4.0, 4.0))
        t = profiler.start_run()
        t = profiler.lap("small", t)
        profiler.lap("big", t)
        profiler.end_run()
        rows = profiler.breakdown()
        assert [row["phase"] for row in rows] == ["big", "small"]
        assert rows[0]["share"] == pytest.approx(0.75)

    def test_dict_round_trip(self):
        profiler = PhaseProfiler(
            per_epoch=True, clock=FakeClock(0.0, 2.0, 2.0)
        )
        t = profiler.start_run()
        profiler.lap("deliver", t)
        profiler.end_run()
        restored = PhaseProfiler.from_dict(profiler.to_dict())
        assert restored.totals_s == profiler.totals_s
        assert restored.counts == profiler.counts
        assert restored.total_run_s == profiler.total_run_s
        assert restored.epoch_rows == profiler.epoch_rows


class TestNullProfiler:
    def test_disabled_and_inert(self):
        assert not NULL_PROFILER.enabled
        t = NULL_PROFILER.start_run()
        assert NULL_PROFILER.lap("deliver", t) == t
        NULL_PROFILER.end_run()
        assert NULL_PROFILER.totals_s == {}
        assert NULL_PROFILER.coverage() == 0.0
        assert NULL_PROFILER.breakdown() == []
