"""Unit tests for the structured event tracer (repro.obs.events)."""

import pytest

from repro.obs.events import EVENT_TYPES, Event, EventTracer, NULL_TRACER


class TestEvent:
    def test_round_trips_through_dict(self):
        event = Event(type="cell.enqueue", epoch=4, ts_s=1.6e-6,
                      node=2, fields={"queue": "local", "flow": 7})
        assert Event.from_dict(event.to_dict()) == event

    def test_nodeless_event_omits_node_key(self):
        event = Event(type="epoch", epoch=0, ts_s=0.0)
        assert "node" not in event.to_dict()


class TestEventTracer:
    def test_emit_stamps_current_position(self):
        tracer = EventTracer()
        tracer.at(12, 4.8e-6)
        tracer.emit("grant.issued", node=3, src=1, dst=2)
        (event,) = tracer.events
        assert event.epoch == 12
        assert event.ts_s == 4.8e-6
        assert event.node == 3
        assert event.fields == {"src": 1, "dst": 2}

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            EventTracer().emit("cell.teleport")

    def test_vocabulary_covers_the_simulator(self):
        required = {
            "cell.enqueue", "cell.dequeue", "cell.drop",
            "grant.issued", "grant.denied",
            "failure.announce", "failure.recover",
            "epoch", "flow.arrival", "flow.completion",
        }
        assert required <= EVENT_TYPES

    def test_cap_counts_dropped_events(self):
        tracer = EventTracer(max_events=2)
        for _ in range(5):
            tracer.emit("epoch")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_select_and_counts(self):
        tracer = EventTracer()
        tracer.emit("epoch")
        tracer.emit("cell.drop", count=3)
        tracer.emit("epoch")
        assert len(tracer.select("epoch")) == 2
        assert tracer.counts_by_type() == {"epoch": 2, "cell.drop": 1}


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.at(5, 1.0)
        NULL_TRACER.emit("epoch")
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.select("epoch") == []
        assert NULL_TRACER.counts_by_type() == {}
