"""The observability CLI surface: simulate --trace-out / report / trace.

Acceptance (ISSUE): a traced run produces a JSONL log and a Chrome
trace that both round-trip through ``sirius-repro report``.
"""

import json

from repro.cli import main
from repro.obs import load_any


def _simulate(tmp_path, *extra):
    args = [
        "simulate", "--nodes", "8", "--grating-ports", "4",
        "--flows", "40", "--load", "0.4", "--seed", "7", *extra,
    ]
    assert main(args) == 0


class TestSimulateTracing:
    def test_trace_out_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        _simulate(tmp_path, "--trace-out", str(out))
        assert "trace" in capsys.readouterr().out
        trace = load_any(out)
        assert trace.meta["format"] == "sirius-trace"
        assert trace.meta["nodes"] == 8
        assert trace.event_counts()["epoch"] == trace.meta["epochs"]
        assert trace.metric("delivered_bits_total")["value"] > 0

    def test_chrome_out_writes_trace_event_json(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        _simulate(tmp_path, "--chrome-out", str(out))
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert capsys.readouterr().out  # progress lines printed

    def test_profile_prints_phase_breakdown(self, tmp_path, capsys):
        _simulate(tmp_path, "--profile")
        out = capsys.readouterr().out
        assert "phase" in out
        assert "transmit" in out
        assert "profiler coverage" in out


class TestReportCommand:
    def test_report_from_jsonl(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        _simulate(tmp_path, "--trace-out", str(out))
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "events" in text
        assert "delivered_bits_total" in text
        assert "wall-clock phases" in text

    def test_report_from_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        _simulate(tmp_path, "--chrome-out", str(out))
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "events" in text
        assert "cell.dequeue" in text


class TestTraceCommand:
    def test_jsonl_to_chrome_conversion(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.trace.json"
        _simulate(tmp_path, "--trace-out", str(jsonl))
        capsys.readouterr()
        assert main(["trace", str(jsonl), "-o", str(chrome)]) == 0
        assert "perfetto" in capsys.readouterr().out
        payload = json.loads(chrome.read_text())
        names = {record["name"] for record in payload["traceEvents"]}
        assert "cell.dequeue" in names
        # Converted file still renders a report (full round-trip).
        assert load_any(chrome).event_counts()["cell.dequeue"] > 0
