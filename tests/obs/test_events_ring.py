"""Ring-mode tracer retention, live taps, and drop accounting.

The legacy tracer stops recording at its cap (keep-oldest); ring mode
keeps the *recent* window instead, which is what a long-running service
job needs.  Both count what they discard, the exporters surface the
count, and a tap is a bounded side-channel that can never block or
stall the emitting epoch loop.
"""

from repro.obs import Observation
from repro.obs.events import EventTap, EventTracer, NullTracer
from repro.obs.report import render_report
from repro.obs.trace_io import run_trace


def _emit_epochs(tracer, n):
    for epoch in range(n):
        tracer.at(epoch, epoch * 1e-6)
        tracer.emit("epoch")


class TestRingMode:
    def test_legacy_mode_keeps_oldest(self):
        tracer = EventTracer(max_events=3)
        _emit_epochs(tracer, 5)
        assert [e.epoch for e in tracer.events] == [0, 1, 2]
        assert tracer.dropped == 2

    def test_ring_mode_keeps_newest(self):
        tracer = EventTracer(max_events=3, ring=True)
        _emit_epochs(tracer, 5)
        assert [e.epoch for e in tracer.events] == [2, 3, 4]
        assert tracer.dropped == 2

    def test_ring_mode_selects_and_counts(self):
        tracer = EventTracer(max_events=4, ring=True)
        _emit_epochs(tracer, 3)
        tracer.emit("cell.drop", node=1, count=2, reason="failure")
        assert len(tracer.select("cell.drop")) == 1
        assert tracer.counts_by_type() == {"epoch": 3, "cell.drop": 1}

    def test_live_observation_uses_ring(self):
        obs = Observation.live(max_events=8)
        assert obs.tracer.ring is True
        _emit_epochs(obs.tracer, 20)
        assert len(obs.tracer) == 8
        assert obs.tracer.dropped == 12


class TestTap:
    def test_tap_receives_subsequent_emits(self):
        tracer = EventTracer()
        tap = tracer.tap()
        _emit_epochs(tracer, 3)
        assert [e.epoch for e in tap.drain()] == [0, 1, 2]
        assert tap.drain() == []

    def test_tap_bounded_drops_new_and_counts(self):
        tracer = EventTracer()
        tap = tracer.tap(maxlen=2)
        _emit_epochs(tracer, 5)
        assert len(tap) == 2
        assert tap.dropped == 3
        # The retained window is the oldest two: drop-new keeps the
        # consumer's position contiguous.
        assert [e.epoch for e in tap.drain()] == [0, 1]

    def test_drain_limit(self):
        tracer = EventTracer()
        tap = tracer.tap()
        _emit_epochs(tracer, 5)
        assert len(tap.drain(limit=2)) == 2
        assert len(tap.drain()) == 3

    def test_close_detaches(self):
        tracer = EventTracer()
        tap = tracer.tap()
        tap.close()
        _emit_epochs(tracer, 2)
        assert tap.drain() == []

    def test_ring_eviction_does_not_touch_tap(self):
        tracer = EventTracer(max_events=2, ring=True)
        tap = tracer.tap()
        _emit_epochs(tracer, 4)
        # The tracer's ring evicted 2, but the tap saw every emit.
        assert len(tracer) == 2
        assert [e.epoch for e in tap.drain()] == [0, 1, 2, 3]

    def test_null_tracer_tap_is_detached(self):
        tap = NullTracer().tap()
        assert isinstance(tap, EventTap)
        assert tap.drain() == []


class TestDroppedSurfacedInReport:
    def _report_for(self, tracer):
        obs = Observation(tracer=tracer)
        trace = run_trace(obs, meta={"system": "Sirius"})
        return render_report(trace)

    def test_report_flags_partial_event_counts(self):
        tracer = EventTracer(max_events=3, ring=True)
        _emit_epochs(tracer, 10)
        report = self._report_for(tracer)
        assert "7 events dropped" in report
        assert "partial" in report

    def test_report_silent_when_nothing_dropped(self):
        tracer = EventTracer()
        _emit_epochs(tracer, 3)
        assert "dropped" not in self._report_for(tracer)
