"""Tests for trace persistence and the report renderer
(repro.obs.trace_io / repro.obs.report)."""

import json

import pytest

from repro.obs.events import EventTracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.observation import Observation
from repro.obs.profiling import PhaseProfiler
from repro.obs.report import ascii_sparkline, format_table, render_report
from repro.obs.trace_io import (
    chrome_trace,
    load_any,
    read_trace,
    run_trace,
    write_chrome_trace,
    write_jsonl,
)


def recorded_observation():
    """A small hand-built Observation with all three planes populated."""
    obs = Observation(
        registry=MetricsRegistry(),
        tracer=EventTracer(),
        profiler=PhaseProfiler(clock=iter([0.0, 1.0, 1.5, 1.5]).__next__),
    )
    obs.registry.counter("delivered_bits_total").inc(4096)
    obs.registry.counter("grants_issued_total").inc(src=0, dst=1)
    gauge = obs.registry.gauge("net_backlog_cells", track=True)
    gauge.set(5, at=0)
    gauge.set(2, at=4)
    obs.tracer.at(0, 0.0)
    obs.tracer.emit("epoch")
    obs.tracer.at(4, 1.6e-6)
    obs.tracer.emit("cell.enqueue", node=1, queue="fwd", flow=3, dst=2)
    t = obs.profiler.start_run()
    t = obs.profiler.lap("deliver", t)
    obs.profiler.lap("transmit", t)
    obs.profiler.end_run()
    return obs


class TestJsonlRoundTrip:
    def test_everything_survives(self, tmp_path):
        obs = recorded_observation()
        path = write_jsonl(tmp_path / "run.jsonl", obs,
                           meta={"epochs": 5, "epoch_duration_s": 4e-7})
        trace = read_trace(path)
        assert trace.meta["epochs"] == 5
        assert trace.event_counts() == {"epoch": 1, "cell.enqueue": 1}
        assert trace.events[1].node == 1
        assert trace.events[1].fields["queue"] == "fwd"
        assert trace.metric("delivered_bits_total")["value"] == 4096
        assert trace.metric("grants_issued_total",
                            src=0, dst=1)["value"] == 1
        assert trace.series("net_backlog_cells") == [[0, 5], [4, 2]]
        assert trace.profile.totals_s == {"deliver": 1.0, "transmit": 0.5}

    def test_run_trace_matches_disk_round_trip(self, tmp_path):
        obs = recorded_observation()
        in_memory = run_trace(obs, meta={"epochs": 5})
        path = write_jsonl(tmp_path / "run.jsonl", obs, meta={"epochs": 5})
        from_disk = read_trace(path)
        # Disk adds the format/version header keys.
        assert from_disk.meta.pop("format") == "sirius-trace"
        from_disk.meta.pop("version")
        assert in_memory.meta == from_disk.meta
        assert in_memory.events == from_disk.events
        # JSON round-trips tuples as lists; compare normalized.
        assert json.loads(json.dumps(in_memory.metrics)) == from_disk.metrics

    def test_dropped_events_recorded_in_meta(self, tmp_path):
        obs = Observation(tracer=EventTracer(max_events=1))
        obs.tracer.emit("epoch")
        obs.tracer.emit("epoch")
        trace = read_trace(write_jsonl(tmp_path / "run.jsonl", obs))
        assert trace.meta["events_dropped"] == 1

    def test_bad_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)

    def test_unknown_record_kind_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            read_trace(path)


class TestChromeTrace:
    def test_structure(self, tmp_path):
        obs = recorded_observation()
        trace = run_trace(obs, meta={"epoch_duration_s": 4e-7})
        payload = chrome_trace(trace)
        assert "traceEvents" in payload
        phases = {r["ph"] for r in payload["traceEvents"]}
        assert {"M", "i", "C", "X"} <= phases
        instants = [r for r in payload["traceEvents"] if r["ph"] == "i"]
        assert instants[1]["args"]["epoch"] == 4
        assert instants[1]["tid"] == 1  # per-node track

    def test_file_is_plain_json(self, tmp_path):
        obs = recorded_observation()
        path = write_chrome_trace(tmp_path / "t.json", run_trace(obs))
        assert "traceEvents" in json.loads(path.read_text())

    def test_load_any_sniffs_both_formats(self, tmp_path):
        obs = recorded_observation()
        meta = {"epoch_duration_s": 4e-7}
        jsonl = write_jsonl(tmp_path / "run.jsonl", obs, meta=meta)
        chrome = write_chrome_trace(
            tmp_path / "run.trace.json", run_trace(obs, meta=meta)
        )
        from_jsonl = load_any(jsonl)
        from_chrome = load_any(chrome)
        assert from_jsonl.event_counts() == from_chrome.event_counts()
        assert from_chrome.profile.totals_s == pytest.approx(
            from_jsonl.profile.totals_s
        )


class TestReport:
    def test_report_renders_all_sections(self, tmp_path):
        obs = recorded_observation()
        trace = run_trace(obs, meta={"epochs": 5, "epoch_duration_s": 4e-7})
        text = render_report(trace, title="unit run")
        assert "unit run" in text
        assert "cell.enqueue" in text
        assert "delivered_bits_total" in text
        assert "deliver" in text          # phase table
        assert "net_backlog_cells" in text or "backlog" in text

    def test_report_of_empty_trace_is_graceful(self):
        from repro.obs.trace_io import RunTrace

        text = render_report(RunTrace())
        assert "no events" in text or "events" in text


class TestFormatting:
    def test_format_table_aligns_columns(self):
        table = format_table(["name", "n"], [["a", 1], ["long", 250]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_sparkline_rejects_negative_values(self):
        with pytest.raises(ValueError, match="non-negative"):
            ascii_sparkline([3, -1, 4])

    def test_sparkline_constant_and_empty(self):
        with pytest.raises(ValueError, match="empty"):
            ascii_sparkline([])
        assert ascii_sparkline([5, 5, 5])
