"""RFC 6455 conformance of the stdlib websocket layer.

Covers the handshake accept-key (against the RFC's published vector),
the frame codec at each length tier, client masking, fragmentation
reassembly, control-frame rules, and a loopback conversation over real
asyncio streams.
"""

import asyncio
import struct

import pytest

from repro.serve.websocket import (
    MAX_MESSAGE_BYTES,
    OP_CLOSE,
    OP_CONT,
    OP_PING,
    OP_TEXT,
    WebSocket,
    WebSocketError,
    accept_key,
    decode_frame_header,
    encode_frame,
)


class TestAcceptKey:
    def test_rfc_6455_published_vector(self):
        # RFC 6455 §1.3's worked example.
        assert (accept_key("dGhlIHNhbXBsZSBub25jZQ==")
                == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=")


class TestFrameCodec:
    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65_535, 65_536])
    def test_length_tiers_roundtrip(self, size):
        payload = bytes(size % 251 for _ in range(size))
        wire = encode_frame(OP_TEXT, payload)
        fin, opcode, masked, base = decode_frame_header(wire[0], wire[1])
        assert fin and opcode == OP_TEXT and not masked
        if size < 126:
            assert base == size
            assert wire[2:] == payload
        elif size < (1 << 16):
            assert base == 126
            assert struct.unpack(">H", wire[2:4])[0] == size
        else:
            assert base == 127
            assert struct.unpack(">Q", wire[2:10])[0] == size

    def test_masked_frame_hides_payload_on_the_wire(self):
        payload = b"telemetry"
        wire = encode_frame(OP_TEXT, payload, mask=True)
        assert payload not in wire
        key = wire[2:6]
        unmasked = bytes(b ^ key[i % 4]
                         for i, b in enumerate(wire[6:]))
        assert unmasked == payload

    def test_reserved_bits_rejected(self):
        with pytest.raises(WebSocketError, match="reserved"):
            decode_frame_header(0x80 | 0x40 | OP_TEXT, 0)


class _SinkWriter:
    """Collects writes in memory; satisfies the StreamWriter surface."""

    def __init__(self):
        self.sent = []

    def write(self, data):
        self.sent.append(bytes(data))

    async def drain(self):
        pass

    def close(self):
        pass


def _recv_from(data: bytes, writer=None):
    """Run one recv() against a preloaded reader (loop-local setup)."""
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        ws = WebSocket(reader, writer or _SinkWriter())
        return await ws.recv(), ws

    return asyncio.run(scenario())


class TestRecv:
    def test_single_text_message(self):
        message, _ws = _recv_from(
            encode_frame(OP_TEXT, "hello".encode(), mask=True)
        )
        assert message == "hello"

    def test_fragmented_message_reassembled(self):
        wire = (encode_frame(OP_TEXT, b"tele", fin=False)
                + encode_frame(OP_CONT, b"metry", fin=True))
        assert _recv_from(wire)[0] == "telemetry"

    def test_ping_answered_transparently(self):
        writer = _SinkWriter()
        wire = (encode_frame(OP_PING, b"hb")
                + encode_frame(OP_TEXT, b"after"))
        message, _ws = _recv_from(wire, writer=writer)
        assert message == "after"
        fin, opcode, _masked, length = decode_frame_header(
            writer.sent[0][0], writer.sent[0][1]
        )
        assert opcode == 0xA and length == 2  # pong echoing the payload

    def test_close_frame_returns_none(self):
        wire = encode_frame(OP_CLOSE, struct.pack(">H", 1000))
        message, ws = _recv_from(wire)
        assert message is None
        assert ws.closed

    def test_eof_mid_stream_returns_none(self):
        assert _recv_from(b"")[0] is None

    def test_interleaved_message_start_rejected(self):
        wire = (encode_frame(OP_TEXT, b"a", fin=False)
                + encode_frame(OP_TEXT, b"b", fin=True))
        with pytest.raises(WebSocketError, match="inside a fragmented"):
            _recv_from(wire)

    def test_orphan_continuation_rejected(self):
        wire = encode_frame(OP_CONT, b"tail", fin=True)
        with pytest.raises(WebSocketError, match="continuation"):
            _recv_from(wire)

    def test_fragmented_control_frame_rejected(self):
        wire = encode_frame(OP_PING, b"x", fin=False)
        with pytest.raises(WebSocketError, match="control frames"):
            _recv_from(wire)

    def test_oversized_frame_rejected(self):
        header = bytearray([0x80 | OP_TEXT, 127])
        header += struct.pack(">Q", MAX_MESSAGE_BYTES + 1)
        with pytest.raises(WebSocketError, match="exceeds limit"):
            _recv_from(bytes(header))


class TestLoopback:
    def test_send_and_receive_over_real_streams(self):
        async def scenario():
            server_seen = []

            async def handler(reader, writer):
                ws = WebSocket(reader, writer)
                server_seen.append(await ws.recv())
                await ws.send_text("pong!")
                await ws.send_close()

            server = await asyncio.start_server(
                handler, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            client = WebSocket(reader, writer, client_side=True)
            await client.send_text("ping?")
            reply = await client.recv()
            writer.close()
            server.close()
            await server.wait_closed()
            return server_seen, reply

        server_seen, reply = asyncio.run(scenario())
        assert server_seen == ["ping?"]
        assert reply == "pong!"
