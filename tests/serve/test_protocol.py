"""Wire-vocabulary tests: the closed frame-type set and its validators."""

import pytest

from repro.serve.protocol import (
    CLIENT_FRAME_TYPES,
    SERVER_FRAME_TYPES,
    STREAM_KINDS,
    ProtocolError,
    decode_frame,
    drops_frame,
    encode_frame,
    error_frame,
    events_frame,
    heartbeat_frame,
    hello_frame,
    metrics_delta_frame,
    parse_client_frame,
    run_row,
    run_update_frame,
)


class TestVocabulary:
    def test_sets_are_disjoint(self):
        assert not SERVER_FRAME_TYPES & CLIENT_FRAME_TYPES

    def test_constructors_cover_every_server_type(self):
        frames = [
            hello_frame([]),
            run_update_frame({"run_id": "run-1"}),
            metrics_delta_frame("run-1", 1, []),
            events_frame("run-1", 1, []),
            drops_frame(3),
            heartbeat_frame(1.5, []),
            error_frame("nope"),
        ]
        assert {f["type"] for f in frames} == set(SERVER_FRAME_TYPES)

    def test_streams_are_the_two_telemetry_kinds(self):
        assert STREAM_KINDS == {"metrics", "events"}


class TestEncodeDecode:
    def test_roundtrip(self):
        frame = metrics_delta_frame("run-1", 7, [{"name": "x", "value": 1}])
        assert decode_frame(encode_frame(frame)) == frame

    def test_encode_rejects_unknown_type(self):
        with pytest.raises(ProtocolError):
            encode_frame({"type": "gossip"})

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame("{nope")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame("[1, 2]")

    def test_decode_rejects_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode_frame('{"type": "gossip"}')


class TestParseClientFrame:
    def test_subscribe_defaults(self):
        frame = parse_client_frame('{"type": "subscribe"}')
        assert frame["runs"] == "*"
        assert frame["streams"] == ["events", "metrics"]

    def test_subscribe_normalizes_selections(self):
        frame = parse_client_frame(
            '{"type": "subscribe", "runs": ["run-2"],'
            ' "streams": ["metrics"]}'
        )
        assert frame["runs"] == ["run-2"]
        assert frame["streams"] == ["metrics"]

    def test_subscribe_rejects_bad_runs(self):
        with pytest.raises(ProtocolError, match="subscribe.runs"):
            parse_client_frame('{"type": "subscribe", "runs": 7}')

    def test_subscribe_rejects_unknown_stream(self):
        with pytest.raises(ProtocolError, match="subscribe.streams"):
            parse_client_frame(
                '{"type": "subscribe", "streams": ["logs"]}'
            )

    def test_server_frame_from_client_is_rejected(self):
        with pytest.raises(ProtocolError, match="server frame"):
            parse_client_frame('{"type": "heartbeat", "uptime_s": 0}')


class TestRunRow:
    def test_minimal_row(self):
        row = run_row("run-1", "simulate", "pending", {"nodes": 8})
        assert row == {"run_id": "run-1", "kind": "simulate",
                       "state": "pending", "spec": {"nodes": 8}}

    def test_optional_fields_appear_when_set(self):
        row = run_row("run-1", "sweep", "failed", {}, progress={"epoch": 3},
                      result={"points": []}, error="boom")
        assert row["progress"] == {"epoch": 3}
        assert row["result"] == {"points": []}
        assert row["error"] == "boom"
