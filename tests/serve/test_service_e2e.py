"""End-to-end service demo: HTTP-submitted jobs streaming live frames.

The acceptance scenario for ``sirius-repro serve``: start the service,
submit two simulate jobs over plain HTTP, and watch both stream metric
deltas and trace events over one websocket while they run concurrently.
Being observed must change the simulated results not at all, and the
wall-clock cost of live observation stays under 10%.
"""

import asyncio
import gc
import json
import time

import pytest

from repro.perf.sweep import run_sirius_job
from repro.serve.app import TelemetryServer
from repro.serve.jobs import SIMULATE_DEFAULTS, _point_summary, _simulate_job
from repro.serve.protocol import decode_frame
from repro.serve.websocket import client_handshake

_SUBSCRIBE = json.dumps(
    {"type": "subscribe", "runs": "*", "streams": ["metrics", "events"]}
)


async def _http_json(host, port, method, path, payload=None):
    """One HTTP exchange over a fresh connection; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Content-Type: application/json\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    header, _, payload_bytes = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    return status, json.loads(payload_bytes) if payload_bytes else None


async def _wait_finished(run, timeout: float = 60.0) -> None:
    await asyncio.wait_for(run.wait_finished(), timeout)


def _comparable(summary):
    return {k: v for k, v in summary.items()
            if k not in ("label", "sim_wall_s", "duration_s")}


class TestTwoConcurrentJobs:
    def test_http_submission_streams_live_frames_for_both(self):
        async def scenario():
            async with TelemetryServer(
                port=0, sample_interval_s=0.02
            ) as server:
                host, port = server.host, server.port
                reader, writer = await asyncio.open_connection(host, port)
                ws = await client_handshake(
                    reader, writer, host=f"{host}:{port}"
                )
                await ws.send_text(_SUBSCRIBE)

                status_a, job_a = await _http_json(
                    host, port, "POST", "/api/jobs",
                    {"kind": "simulate",
                     "params": {"flows": 300, "seed": 3}},
                )
                status_b, job_b = await _http_json(
                    host, port, "POST", "/api/jobs",
                    {"kind": "simulate",
                     "params": {"flows": 300, "seed": 4, "load": 0.75}},
                )
                ids = {job_a["run_id"], job_b["run_id"]}

                frames = []
                done = set()

                async def collect():
                    while done != ids:
                        text = await ws.recv()
                        if text is None:
                            return
                        frame = decode_frame(text)
                        frames.append(frame)
                        if (frame["type"] == "run.update"
                                and frame["run"]["state"] in
                                ("done", "failed")):
                            done.add(frame["run"]["run_id"])

                await asyncio.wait_for(collect(), 60)
                status_runs, table = await _http_json(
                    host, port, "GET", "/api/runs"
                )
                status_one, one = await _http_json(
                    host, port, "GET", f"/api/runs/{job_a['run_id']}"
                )
                return (status_a, status_b, ids, frames,
                        status_runs, table, status_one, one)

        (status_a, status_b, ids, frames,
         status_runs, table, status_one, one) = asyncio.run(scenario())

        assert status_a == 201 and status_b == 201
        run_a, run_b = sorted(ids)

        # Both jobs streamed live telemetry over the one websocket.
        metrics_for = lambda rid: [
            i for i, f in enumerate(frames)
            if f["type"] == "metrics.delta" and f["run_id"] == rid
        ]
        events_for = lambda rid: [
            f for f in frames
            if f["type"] == "events" and f["run_id"] == rid
        ]
        assert metrics_for(run_a) and metrics_for(run_b)
        assert events_for(run_a) and events_for(run_b)

        # And concurrently: each run's first delta arrived before the
        # other run finished — the streams interleave, they don't queue
        # up behind one another.
        done_at = {
            f["run"]["run_id"]: i for i, f in enumerate(frames)
            if f["type"] == "run.update" and f["run"]["state"] == "done"
        }
        assert metrics_for(run_a)[0] < done_at[run_b]
        assert metrics_for(run_b)[0] < done_at[run_a]

        # No run failed, and the HTTP view agrees when the dust settles.
        assert not any(f["type"] == "run.update"
                       and f["run"]["state"] == "failed" for f in frames)
        assert status_runs == 200
        by_id = {row["run_id"]: row for row in table["runs"]}
        assert by_id[run_a]["state"] == "done"
        assert by_id[run_b]["state"] == "done"
        assert by_id[run_a]["result"]["completed_flows"] > 0
        assert status_one == 200
        assert one["metrics"], "per-run snapshot endpoint returned no metrics"

        # Each delta frame carries real samples with the run gauges.
        sampled_names = {
            sample["name"]
            for f in frames if f["type"] == "metrics.delta"
            for sample in f["samples"]
        }
        assert "run_epoch" in sampled_names
        assert "net_delivered_bits" in sampled_names


class TestObserverNeutrality:
    def test_served_run_matches_direct_execution_exactly(self):
        params = {"flows": 300, "seed": 11}

        async def scenario():
            async with TelemetryServer(
                port=0, sample_interval_s=0.02
            ) as server:
                run = server.pool.submit("simulate", dict(params))
                await _wait_finished(run)
                # Drain the final sample so the full pipeline ran.
                await asyncio.sleep(0.1)
                return run

        run = asyncio.run(scenario())
        assert run.state == "done"

        direct = run_sirius_job(_simulate_job(
            {**SIMULATE_DEFAULTS, **params}, label="direct"
        ))
        assert _comparable(run.result) == _comparable(
            _point_summary(direct)
        )


# Timing guard: like tests/obs/test_overhead.py, take the best of
# _REPS runs per side and allow _ATTEMPTS tries, so a scheduler hiccup
# cannot fail the suite while a real regression still does.
_REPS = 3
_ATTEMPTS = 3
_MAX_OVERHEAD = 0.10


class TestStreamingOverhead:
    def test_attached_observer_costs_under_ten_percent(self):
        # Baseline: the identical live-instrumented execution with no
        # service attached.  (The cost of instrumentation itself over a
        # bare run is guarded separately by tests/obs/test_overhead.py's
        # no-op check; this test pins the *streaming* layer — tap
        # pushes, sampler ticks, frame encoding, a reading websocket
        # client — all sharing the process with the epoch loop.)
        params = {"flows": 300, "seed": 5}
        job = _simulate_job({**SIMULATE_DEFAULTS, **params},
                            label="baseline")

        def best_direct():
            from repro.obs import Observation

            best = float("inf")
            for _ in range(_REPS):
                obs = Observation.live(
                    sample_every=int(SIMULATE_DEFAULTS["sample_every"]),
                    max_events=int(SIMULATE_DEFAULTS["max_events"]),
                )
                gc.collect()
                started = time.perf_counter()
                run_sirius_job(job, obs=obs)
                best = min(best, time.perf_counter() - started)
            return best

        async def one_served():
            async with TelemetryServer(port=0) as server:
                host, port = server.host, server.port
                reader, writer = await asyncio.open_connection(host, port)
                ws = await client_handshake(
                    reader, writer, host=f"{host}:{port}"
                )
                await ws.send_text(_SUBSCRIBE)

                # The watcher reads every frame but does not JSON-parse
                # them: on a single-core box the in-process client's
                # decoding would be billed to the simulation too, and
                # this guard is about the server-side streaming cost.
                async def pump():
                    while await ws.recv() is not None:
                        pass

                pump_task = asyncio.ensure_future(pump())
                run = server.pool.submit("simulate", dict(params))
                await _wait_finished(run)
                pump_task.cancel()
                return run.result["sim_wall_s"]

        def best_served():
            best = float("inf")
            for _ in range(_REPS):
                gc.collect()
                best = min(best, asyncio.run(one_served()))
            return best

        # Accumulate the best observation of each side across attempts:
        # min-over-all-reps is the least noisy estimate of true cost on
        # a busy (and possibly single-core) CI box.  Cycle collection
        # is off for the timed region: gc pauses scale with the live
        # heap, which is far larger with a server attached, and that
        # asymmetry is not the overhead this guard is about.
        base = served = float("inf")
        gc.disable()
        try:
            for _ in range(_ATTEMPTS):
                base = min(base, best_direct())
                served = min(served, best_served())
                if served <= base * (1 + _MAX_OVERHEAD):
                    break
            else:
                pytest.fail(
                    f"streaming overhead too high: served {served:.4f}s "
                    f"vs direct {base:.4f}s "
                    f"({(served / base - 1) * 100:.1f}% > "
                    f"{_MAX_OVERHEAD * 100:.0f}%)"
                )
        finally:
            gc.enable()
