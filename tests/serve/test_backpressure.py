"""Slow-consumer backpressure: a stalled watcher never costs the run.

The service's contract is one-directional: telemetry flows out on a
best-effort basis and nothing on the consumer side — a wedged browser
tab, a dead TCP peer, a queue nobody drains — may slow the simulation
or grow server state without bound.  These tests stall consumers in
both ways (a real websocket client that stops reading, and a hub
subscriber whose queue is never drained, which is exactly what a
writer task blocked on a dead peer looks like) and assert the run
finishes unharmed, with identical results, while the drops are
counted where they happen.
"""

import asyncio
import json
import time

from repro.serve.app import TelemetryServer
from repro.serve.protocol import decode_frame
from repro.serve.websocket import client_handshake

#: A run long enough to span many sampler ticks, short enough for CI.
_SPEC = {"nodes": 16, "flows": 300, "seed": 7}

_SUBSCRIBE = json.dumps(
    {"type": "subscribe", "runs": "*", "streams": ["metrics", "events"]}
)


async def _wait_finished(run, timeout: float = 60.0) -> float:
    """Wait out one run; returns observed wall-clock seconds."""
    started = time.perf_counter()
    await asyncio.wait_for(run.wait_finished(), timeout)
    return time.perf_counter() - started


def _comparable(result):
    """A run result with run-identity and timing fields removed."""
    return {k: v for k, v in result.items()
            if k not in ("label", "sim_wall_s", "duration_s")}


class TestStalledConsumer:
    def test_stalled_clients_drop_while_the_run_completes_unharmed(self):
        async def scenario():
            async with TelemetryServer(
                port=0, sample_interval_s=0.02
            ) as server:
                host, port = server.host, server.port

                # Baseline: the same job with nobody watching.
                baseline = server.pool.submit("simulate", dict(_SPEC))
                baseline_wall = await _wait_finished(baseline)

                # A real websocket client that subscribes, then never
                # reads another byte.
                reader, writer = await asyncio.open_connection(host, port)
                stalled = await client_handshake(
                    reader, writer, host=f"{host}:{port}"
                )
                await stalled.send_text(_SUBSCRIBE)

                # A responsive client that reads everything, proving the
                # stream stays live for consumers that keep up.
                r2, w2 = await asyncio.open_connection(host, port)
                live = await client_handshake(r2, w2, host=f"{host}:{port}")
                await live.send_text(_SUBSCRIBE)
                seen = []

                async def pump():
                    while True:
                        text = await live.recv()
                        if text is None:
                            return
                        seen.append(decode_frame(text))

                pump_task = asyncio.ensure_future(pump())

                # A hub subscriber whose tiny queue is never drained:
                # the deterministic stand-in for a writer task blocked
                # on a dead peer (kernel socket buffers make the
                # TCP-level stall above timing-dependent; this is not).
                stuck = server.hub.register("stuck", queue_frames=4)
                stuck.subscribe("*", ["metrics", "events"])

                watched = server.pool.submit("simulate", dict(_SPEC))
                watched_wall = await _wait_finished(watched)
                # A few extra ticks so the final flush and a heartbeat
                # land while the stuck queue is already full.
                await asyncio.sleep(0.2)
                stats = server.hub.stats()
                pump_task.cancel()
                return (baseline, watched, baseline_wall, watched_wall,
                        stuck, seen, stats)

        (baseline, watched, baseline_wall, watched_wall,
         stuck, seen, stats) = asyncio.run(scenario())

        # The run finished, and being watched by stalled consumers
        # changed its results not at all.
        assert baseline.state == "done" and watched.state == "done"
        assert _comparable(watched.result) == _comparable(baseline.result)

        # Nor its wall-clock, beyond scheduling noise: drops happen in
        # put_nowait on the loop thread, the epoch loop never waits.
        assert watched_wall <= baseline_wall * 3.0 + 0.5, (
            f"watched run took {watched_wall:.3f}s vs "
            f"baseline {baseline_wall:.3f}s — a stalled client stalled it"
        )

        # The undrained subscriber dropped frames, counted them, and
        # its queue never grew past its bound.
        assert stuck.dropped_total > 0
        assert stuck.queue.qsize() <= 4

        # Server-side state for every client stays bounded too.
        from repro.serve.hub import DEFAULT_QUEUE_FRAMES
        for client in stats["clients"]:
            assert client["queued"] <= DEFAULT_QUEUE_FRAMES, client
        assert stats["dropped_total"] >= stuck.dropped_total

        # The responsive client meanwhile got the real stream: metric
        # deltas and trace events for the watched run, and its own view
        # never gapped (no drops notice).
        kinds = {frame["type"] for frame in seen}
        watched_metrics = [f for f in seen if f["type"] == "metrics.delta"
                          and f["run_id"] == watched.run_id]
        assert watched_metrics, f"no metric deltas in {sorted(kinds)}"
        assert any(f["type"] == "events" and f["run_id"] == watched.run_id
                   for f in seen)
        assert "drops" not in kinds
