"""Hub fan-out semantics: filters, bounded queues, drop accounting."""

import asyncio

import pytest

from repro.serve.hub import Subscriber, TelemetryHub
from repro.serve.protocol import heartbeat_frame, metrics_delta_frame


def _frame(run_id="run-1", seq=1):
    return metrics_delta_frame(run_id, seq, [])


class TestSubscription:
    def test_inactive_subscriber_wants_nothing(self):
        sub = Subscriber("c")
        assert not sub.wants("metrics", "run-1")
        assert not sub.wants("control", None)

    def test_star_subscription_wants_everything(self):
        sub = Subscriber("c")
        sub.subscribe("*", ["metrics", "events"])
        assert sub.wants("metrics", "run-1")
        assert sub.wants("events", "run-9")
        assert sub.wants("control", None)

    def test_run_filter(self):
        sub = Subscriber("c")
        sub.subscribe(["run-2"], ["metrics", "events"])
        assert sub.wants("metrics", "run-2")
        assert not sub.wants("metrics", "run-1")
        # Control frames (run table updates, heartbeats) always pass.
        assert sub.wants("control", None)

    def test_stream_filter(self):
        sub = Subscriber("c")
        sub.subscribe("*", ["metrics"])
        assert sub.wants("metrics", "run-1")
        assert not sub.wants("events", "run-1")

    def test_unsubscribe(self):
        sub = Subscriber("c")
        sub.subscribe("*", ["metrics"])
        sub.unsubscribe()
        assert not sub.wants("metrics", "run-1")

    def test_queue_needs_room_for_drops_notice(self):
        with pytest.raises(ValueError):
            Subscriber("c", queue_frames=1)


class TestBackpressure:
    def test_offer_drops_and_counts_when_full(self):
        sub = Subscriber("c", queue_frames=2)
        sub.subscribe("*", ["metrics"])
        assert sub.offer(_frame(seq=1))
        assert sub.offer(_frame(seq=2))
        assert not sub.offer(_frame(seq=3))
        assert not sub.offer(_frame(seq=4))
        assert sub.dropped_total == 2

    def test_drops_notice_enqueued_on_catch_up(self):
        async def scenario():
            sub = Subscriber("c", queue_frames=2)
            sub.subscribe("*", ["metrics"])
            sub.offer(_frame(seq=1))
            sub.offer(_frame(seq=2))
            sub.offer(_frame(seq=3))  # dropped
            # Consumer catches up fully, then the next offer reports
            # the gap before the new frame.
            await sub.queue.get()
            await sub.queue.get()
            sub.offer(_frame(seq=4))
            notice = await sub.queue.get()
            fresh = await sub.queue.get()
            return notice, fresh

        notice, fresh = asyncio.run(scenario())
        assert notice == {"type": "drops", "count": 1}
        assert fresh["seq"] == 4

    def test_publish_never_blocks(self):
        # A full queue must not make publish wait: it returns
        # immediately with the delivery count.
        async def scenario():
            hub = TelemetryHub(queue_frames=2)
            slow = hub.register()
            slow.subscribe("*", ["metrics"])
            fast = hub.register()
            fast.subscribe("*", ["metrics"])
            delivered = []
            for seq in range(10):
                delivered.append(
                    hub.publish(_frame(seq=seq), stream="metrics",
                                run_id="run-1")
                )
                await fast.queue.get()  # fast consumer keeps up
            return delivered, slow.dropped_total, fast.dropped_total

        delivered, slow_drops, fast_drops = asyncio.run(scenario())
        assert fast_drops == 0
        assert slow_drops == 8  # queue of 2 filled, the rest dropped
        assert delivered[:2] == [2, 2]
        assert all(count == 1 for count in delivered[2:])


class TestHub:
    def test_register_unregister(self):
        async def scenario():
            hub = TelemetryHub()
            sub = hub.register()
            assert len(hub) == 1
            hub.unregister(sub)
            return len(hub)

        assert asyncio.run(scenario()) == 0

    def test_publish_respects_filters(self):
        async def scenario():
            hub = TelemetryHub()
            only_two = hub.register()
            only_two.subscribe(["run-2"], ["metrics", "events"])
            everyone = hub.register()
            everyone.subscribe("*", ["metrics", "events"])
            n_run1 = hub.publish(_frame("run-1"), stream="metrics",
                                 run_id="run-1")
            n_control = hub.publish(heartbeat_frame(0.0, []))
            return n_run1, n_control

        n_run1, n_control = asyncio.run(scenario())
        assert n_run1 == 1
        assert n_control == 2

    def test_frames_iterator_ends_on_shutdown(self):
        async def scenario():
            hub = TelemetryHub()
            sub = hub.register()
            sub.subscribe("*", ["metrics"])
            sub.offer(_frame(seq=1))
            hub.shutdown()
            return [frame async for frame in sub.frames()]

        frames = asyncio.run(scenario())
        assert [f["seq"] for f in frames] == [1]

    def test_stats_shape(self):
        async def scenario():
            hub = TelemetryHub()
            sub = hub.register("watcher")
            sub.subscribe("*", ["metrics"])
            hub.publish(_frame(), stream="metrics", run_id="run-1")
            return hub.stats()

        stats = asyncio.run(scenario())
        assert stats["subscribers"] == 1
        assert stats["published_total"] == 1
        (client,) = stats["clients"]
        assert client["name"] == "watcher"
        assert client["queued"] == 1
