#!/usr/bin/env python3
"""Fault tolerance in a Sirius datacenter (paper §4.5).

Fails a rack mid-run and shows what the paper promises: microsecond
detection via the cyclic schedule, no blackholing (stranded transit
cells are retransmitted), unaffected flows complete, degradation is
proportional, and a consistent schedule update regains the lost
bandwidth.  A telemetry sparkline shows the backlog footprint of the
failure.

Run:  python examples/failure_resilience.py
"""

from repro import (
    FailureDetector,
    FailurePlan,
    FlowWorkload,
    SiriusNetwork,
    WorkloadConfig,
)
from repro.core.failures import AdjustedSchedule, surviving_bandwidth_fraction
from repro.core.telemetry import Telemetry, ascii_sparkline
from repro.units import KILOBYTE, MEGABYTE

N_NODES = 32
GRATING_PORTS = 8
FAILED_NODE = 5
FAIL_EPOCH = 120


def main() -> None:
    net = SiriusNetwork(N_NODES, GRATING_PORTS, uplink_multiplier=1.0,
                        seed=1)
    workload = FlowWorkload(WorkloadConfig(
        n_nodes=N_NODES, load=0.4,
        node_bandwidth_bps=net.reference_node_bandwidth_bps,
        mean_flow_bits=50 * KILOBYTE, truncation_bits=1 * MEGABYTE,
        seed=3,
    ))
    flows = workload.generate(1_000)
    plan = FailurePlan.single_failure(FAILED_NODE, at_epoch=FAIL_EPOCH)
    telemetry = Telemetry(sample_every=2)

    print(f"failing node {FAILED_NODE} at epoch {FAIL_EPOCH} "
          f"({FAIL_EPOCH * net.schedule.epoch_duration_s / 1e-6:.0f} us "
          "into the run)\n")
    result = net.run(flows, failure_plan=plan, telemetry=telemetry)

    detector = FailureDetector(N_NODES, node=0, threshold=3)
    unaffected = [f for f in flows
                  if f.src != FAILED_NODE and f.dst != FAILED_NODE]
    completed = sum(1 for f in unaffected if f.is_complete)

    print(f"detection latency        : "
          f"{detector.detection_latency_s(net.schedule.epoch_duration_s) / 1e-6:.1f} us "
          "(3 missed epochs)")
    print(f"unaffected flows         : {completed}/{len(unaffected)} "
          "completed")
    print(f"terminated flows         : {result.failed_flows} "
          "(source or destination was the dead rack)")
    print(f"transit cells salvaged   : {result.retransmitted_cells} "
          "retransmitted by their sources")
    print(f"survivor bandwidth       : "
          f"{surviving_bandwidth_fraction(N_NODES, 1):.1%} "
          "(before schedule adjustment)")

    adjusted = AdjustedSchedule(N_NODES, failed={FAILED_NODE})
    adjusted.verify_round_robin()
    print(f"after schedule adjustment: "
          f"{adjusted.bandwidth_fraction():.0%} over "
          f"{adjusted.epoch_slots}-slot epochs "
          f"({len(adjusted.survivors)} survivors, round-robin verified)")

    print("\nsystem backlog over time (failure visible as the hump):")
    print("  " + ascii_sparkline(telemetry.backlog_series(), width=70))


if __name__ == "__main__":
    main()
