#!/usr/bin/env python3
"""The four-node prototype in software (paper §6).

Runs both testbed generations — Sirius v1 (off-the-shelf DSDBR laser
with the dampened-tuning driver, 100 ns guardband) and Sirius v2 (the
custom fixed-laser-bank chip, 3.84 ns guardband) — with the actual
data path: PRBS bits, AWGR routing, link-budget power accounting,
phase-caching CDR and leader-rotation clock sync.

Run:  python examples/prototype_demo.py
"""

from repro import PrototypeRig, TunableLaser
from repro.optics.laser import NaiveTuningDriver


def describe(report) -> None:
    print(f"  guardband             : {report.guardband_s / 1e-9:.2f} ns")
    print(f"  worst laser tuning    : {report.worst_tuning_s / 1e-9:.3f} ns")
    print(f"  worst reconfiguration : "
          f"{report.worst_reconfiguration_s / 1e-9:.3f} ns "
          f"({'fits' if report.guardband_sufficient else 'EXCEEDS'} "
          "the guardband)")
    print(f"  bits checked          : {report.bits_checked:,}")
    for channel, ber in sorted(report.ber_by_channel.items()):
        status = "error-free" if ber < 1e-12 else f"BER {ber:.2e}"
        print(f"  wavelength channel {channel}  : {status}")
    print(f"  clock sync deviation  : "
          f"±{report.sync_max_offset_s / 1e-12:.2f} ps")


def main() -> None:
    print("Why fast tuning needs work — the stock laser:")
    stock = TunableLaser(driver=NaiveTuningDriver())
    print(f"  off-the-shelf DSDBR retunes in "
          f"{stock.tuning_latency(0, 111) * 1e3:.0f} ms")
    dampened = TunableLaser()
    print(f"  with the dampened driver: worst "
          f"{dampened.tuning_latency(0, 111) / 1e-9:.0f} ns\n")

    for generation, label in (("v1", "Sirius v1 — dampened DSDBR"),
                              ("v2", "Sirius v2 — custom InP chip")):
        print(f"{label}:")
        rig = PrototypeRig(generation, seed=5)
        report = rig.run(n_epochs=15, sync_epochs=4000)
        describe(report)
        print()


if __name__ == "__main__":
    main()
