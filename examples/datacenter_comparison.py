#!/usr/bin/env python3
"""Sirius vs electrically-switched baselines (a miniature of §5 + §7).

Sweeps network load, comparing:

* ESN (Ideal)      — non-blocking folded Clos, idealized transport,
* ESN-OSUB (Ideal) — the same with 3:1 aggregation oversubscription,
* Sirius           — cyclic schedule + request/grant congestion control,

then prints the §5 power/cost story for a full-size datacenter.

Run:  python examples/datacenter_comparison.py
"""

from repro import (
    CongestionConfig,
    FlowWorkload,
    FluidNetwork,
    SiriusNetwork,
    WorkloadConfig,
    pod_map_for,
)
from repro.analysis import NetworkCostModel, NetworkPowerModel, SiriusPowerModel
from repro.units import KILOBYTE, MEGABYTE

N_NODES = 32
GRATING_PORTS = 8
POD_SIZE = 8
N_FLOWS = 800
LOADS = (0.25, 0.5, 1.0)


def make_flows(load, reference_bps, seed=3):
    workload = FlowWorkload(WorkloadConfig(
        n_nodes=N_NODES, load=load, node_bandwidth_bps=reference_bps,
        mean_flow_bits=100 * KILOBYTE, truncation_bits=2 * MEGABYTE,
        seed=seed,
    ))
    return workload.generate(N_FLOWS)


def main() -> None:
    reference = SiriusNetwork(
        N_NODES, GRATING_PORTS, uplink_multiplier=1.0
    ).reference_node_bandwidth_bps

    print(f"{'load':>6} {'system':>18} {'goodput':>8} {'p99 FCT (us)':>13}")
    for load in LOADS:
        esn = FluidNetwork(N_NODES, reference).run(
            make_flows(load, reference))
        osub = FluidNetwork(
            N_NODES, reference,
            pod_map=pod_map_for(N_NODES, POD_SIZE),
            pod_bandwidth_bps=POD_SIZE * reference / 3.0,
        ).run(make_flows(load, reference))
        sirius = SiriusNetwork(
            N_NODES, GRATING_PORTS, uplink_multiplier=1.5, seed=1,
            config=CongestionConfig(queue_threshold=4),
        ).run(make_flows(load, reference))
        for name, result in (("ESN (Ideal)", esn),
                             ("ESN-OSUB (Ideal)", osub),
                             ("Sirius", sirius)):
            p99 = result.fct_percentile(99)
            print(f"{load:>6.0%} {name:>18} "
                  f"{result.normalized_goodput:>8.3f} "
                  f"{(p99 or 0) / 1e-6:>13.1f}")

    print()
    print("-- §5 power & cost for a 4,000-rack datacenter --")
    power = SiriusPowerModel()
    esn_power = NetworkPowerModel()
    for overhead in (3.0, 5.0):
        ratio = power.ratio_vs_esn(overhead, esn_power)
        print(f"tunable laser at {overhead:.0f}x fixed: Sirius power is "
              f"{ratio:.0%} of ESN ({1 - ratio:.0%} savings)")
    cost = NetworkCostModel().headline_ratios()
    print(f"cost vs non-blocking ESN     : {cost['vs_nonblocking']:.0%}")
    print(f"cost vs 3:1 oversubscribed   : {cost['vs_oversubscribed']:.0%}")
    print(f"cost vs electrical variant   : "
          f"{cost['vs_electrical_variant']:.0%}")


if __name__ == "__main__":
    main()
