#!/usr/bin/env python3
"""Exploring Sirius' optical design space (paper §3, §4.5).

Walks through the co-design decisions: the three disaggregated laser
designs, the link budget and laser sharing, the guardband composition,
and the cyclic schedule of a small deployment.

Run:  python examples/design_space.py
"""

from repro import CyclicSchedule, GuardbandBudget, SiriusTopology, TunableLaserBank
from repro.optics.disaggregated import compare_designs
from repro.optics.link_budget import LinkBudget, lasers_per_node
from repro.units import NANOSECOND


def main() -> None:
    print("-- disaggregated laser designs (19 channels) --")
    for row in compare_designs(19, slot_duration_s=100 * NANOSECOND):
        extra = ""
        if "pipeline_feasible" in row:
            extra = (" (pipeline feasible at 100 ns slots)"
                     if row["pipeline_feasible"] else "")
        print(f"  {row['design']:<18} {row['power_w']:6.1f} W, worst tune "
              f"{row['worst_tuning_s'] / 1e-12:5.0f} ps, combiner loss "
              f"{row['combiner_loss_db']:.0f} dB{extra}")

    print("\n-- fault tolerance of the pipelined bank --")
    bank = TunableLaserBank(112, n_lasers=3)
    bank.fail_laser(0)
    print(f"  one laser failed: {bank.healthy_lasers} healthy, switch still "
          f"{bank.tune(50) / 1e-12:.0f} ps")

    print("\n-- link budget (§4.5) --")
    budget = LinkBudget()
    print(f"  losses: grating {budget.grating_loss_db:.0f} dB + coupling "
          f"{budget.coupling_loss_db:.0f} dB + margin "
          f"{budget.margin_db:.0f} dB")
    print(f"  receiver sensitivity {budget.receiver_sensitivity_dbm:.0f} dBm "
          f"-> required launch {budget.required_launch_dbm:.0f} dBm "
          f"({budget.required_launch_mw:.1f} mW)")
    print(f"  a 16 dBm laser feeds {budget.max_sharing_degree()} "
          f"transceivers; 256 uplinks need {lasers_per_node(256)} chips")

    print("\n-- end-to-end reconfiguration budget --")
    for name, gb in (("Sirius v1", GuardbandBudget.sirius_v1()),
                     ("Sirius v2", GuardbandBudget())):
        print(f"  {name}: laser {gb.laser_tuning_s / 1e-9:6.3f} ns + CDR "
              f"{gb.cdr_lock_s / 1e-9:.3f} ns + sync "
              f"{gb.sync_error_s / 1e-12:.0f} ps + preamble "
              f"{gb.preamble_s / 1e-9:.2f} ns = {gb.total_s / 1e-9:6.2f} ns "
              f"(min slot {gb.min_slot_s() / 1e-9:.1f} ns)"
              f"{' — meets the <10 ns target' if gb.meets_target else ''}")

    print("\n-- the Fig 5 example network and its schedule --")
    topology = SiriusTopology(4, 2)
    topology.validate_full_reachability()
    schedule = CyclicSchedule(topology)
    schedule.verify_contention_free()
    wavelength = {0: "A", 1: "B"}
    print("  (node, port) | slot 1        | slot 2")
    for entry in schedule.table():
        s0, s1 = entry["slot0"], entry["slot1"]
        print(f"  ({entry['node'] + 1}, {entry['uplink'] + 1})       | "
              f"{wavelength[s0['wavelength']]} -> node {s0['dst'] + 1}   | "
              f"{wavelength[s1['wavelength']]} -> node {s1['dst'] + 1}")
    print(f"  epoch: {schedule.slots_per_epoch} slots = "
          f"{schedule.epoch_duration_s / 1e-9:.0f} ns; contention-free: yes")


if __name__ == "__main__":
    main()
