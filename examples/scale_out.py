#!/usr/bin/env python3
"""Scaling out with parallel Sirius planes and trace replay (§4.5).

Demonstrates the operator workflow for a post-Moore's-law upgrade:
generate (or import) a flow trace, replay it against one Sirius plane,
then against parallel planes ("topology-level parallelism"), and
compare drain time and goodput.  The trace round-trips through the CSV
format so the exact workload can be archived and replayed.

Run:  python examples/scale_out.py
"""

import tempfile
from pathlib import Path

from repro import ParallelSiriusPlanes, SiriusNetwork
from repro.workload.empirical import empirical_flows
from repro.workload.trace_io import read_flows, trace_summary, write_flows

N_NODES = 16
GRATING_PORTS = 4
N_FLOWS = 400


def main() -> None:
    reference = SiriusNetwork(
        N_NODES, GRATING_PORTS, uplink_multiplier=1.0
    ).reference_node_bandwidth_bps

    # A web-search-like workload (DCTCP [1]) driven well past one
    # plane's comfort zone.
    flows = empirical_flows(
        "web_search", N_FLOWS, n_nodes=N_NODES, load=1.2,
        node_bandwidth_bps=reference, seed=13,
    )

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "web_search.csv"
        write_flows(trace_path, flows)
        replayed = read_flows(trace_path)
    summary = trace_summary(replayed)
    print(f"trace: {summary['flows']} flows, "
          f"{summary['total_bits'] / 8e6:.1f} MB total, "
          f"median {summary['median_size_bits'] / 8:.0f} B, "
          f"window {summary['span_s'] / 1e-6:.0f} us "
          "(round-tripped through CSV)\n")

    print(f"{'planes':>7} {'drain time (us)':>16} {'goodput':>8} "
          f"{'p99 short FCT (us)':>19}")
    for n_planes in (1, 2, 4):
        planes = ParallelSiriusPlanes(
            n_planes, N_NODES, GRATING_PORTS,
            striping="least_loaded", uplink_multiplier=1.5, seed=1,
        )
        # Fresh Flow objects per run (completion state is per-object).
        from repro.core.cell import Flow

        batch = [Flow(f.flow_id, f.src, f.dst, f.size_bits,
                      f.arrival_time) for f in replayed]
        result = planes.run(batch)
        p99 = max(
            (r.fct_percentile(99) or 0.0) for r in result.plane_results
        )
        print(f"{n_planes:>7} {result.duration_s / 1e-6:>16.1f} "
              f"{result.normalized_goodput:>8.3f} {p99 / 1e-6:>19.1f}")

    print("\nadding planes soaks up the overload without touching the "
          "per-plane design — no new hierarchy, no scheduler, no "
          "reconfiguration coupling (§4.5).")


if __name__ == "__main__":
    main()
