#!/usr/bin/env python3
"""Quickstart: simulate a small Sirius datacenter end to end.

Builds a 32-rack Sirius network (8-port gratings, 1.5x uplinks, the
paper's 100 ns slots), offers it the paper's heavy-tailed workload at
50% load, and prints the headline metrics: goodput, short-flow FCT
percentiles and queue peaks.

Run:  python examples/quickstart.py
"""

from repro import FlowWorkload, SiriusNetwork, WorkloadConfig
from repro.units import KILOBYTE, MEGABYTE

N_NODES = 32
GRATING_PORTS = 8
LOAD = 0.5
N_FLOWS = 1_000


def main() -> None:
    net = SiriusNetwork(
        N_NODES, GRATING_PORTS,
        uplink_multiplier=1.5,   # the paper's provisioning (Fig 12)
        track_reorder=True,
        seed=7,
    )
    print(f"topology : {net.topology}")
    print(f"epoch    : {net.schedule.epoch_duration_s / 1e-6:.2f} us "
          f"({net.schedule.slots_per_epoch} slots x "
          f"{net.timing.slot_duration_s / 1e-9:.0f} ns)")
    print(f"cell     : {net.timing.cell_bytes:.0f} B on the wire, "
          f"{net.timing.payload_bits // 8} B payload")

    workload = FlowWorkload(WorkloadConfig(
        n_nodes=N_NODES,
        load=LOAD,
        node_bandwidth_bps=net.reference_node_bandwidth_bps,
        mean_flow_bits=100 * KILOBYTE,
        truncation_bits=2 * MEGABYTE,
        seed=11,
    ))
    flows = workload.generate(N_FLOWS)
    print(f"workload : {len(flows)} Pareto flows at load {LOAD:.0%} "
          f"over {workload.expected_duration(N_FLOWS) / 1e-6:.0f} us")

    result = net.run(flows)

    print()
    print(f"epochs simulated      : {result.epochs}")
    print(f"flows completed       : {len(result.completed_flows)}"
          f"/{len(result.flows)}")
    print(f"normalized goodput    : {result.normalized_goodput:.3f}")
    print(f"short-flow FCT p50    : "
          f"{result.fct_percentile(50) / 1e-6:.1f} us")
    print(f"short-flow FCT p99    : "
          f"{result.fct_percentile(99) / 1e-6:.1f} us")
    print(f"peak forward queue    : {result.peak_fwd_bytes / 1000:.1f} KB "
          f"({result.peak_fwd_cells} cells)")
    print(f"peak reorder buffer   : {result.peak_reorder_bytes / 1000:.1f} KB"
          f" per flow")


if __name__ == "__main__":
    main()
